#include "core/replica.hpp"

#include <algorithm>
#include <any>
#include <memory>

#include "util/log.hpp"

namespace sdns::core {

using util::Bytes;
using util::BytesView;
using util::Reader;
using util::Writer;

const char* to_string(ClientMode m) {
  switch (m) {
    case ClientMode::kPragmatic: return "pragmatic";
    case ClientMode::kVoting: return "voting";
  }
  return "?";
}

const char* to_string(CorruptionMode m) {
  switch (m) {
    case CorruptionMode::kHonest: return "honest";
    case CorruptionMode::kFlipShares: return "flip-shares";
    case CorruptionMode::kMute: return "mute";
    case CorruptionMode::kStaleReplay: return "stale-replay";
    case CorruptionMode::kEquivocate: return "equivocate";
    case CorruptionMode::kGarbagePayload: return "garbage-payload";
    case CorruptionMode::kGarbageShares: return "garbage-shares";
  }
  return "?";
}

namespace {
// Replica-to-replica frame tags.
constexpr std::uint8_t kAbcastFrame = 0x01;
constexpr std::uint8_t kSigningFrame = 0x02;
constexpr std::uint8_t kSnapshotRequestFrame = 0x03;
constexpr std::uint8_t kSnapshotFrame = 0x04;
constexpr std::uint8_t kSnapshotCurrentFrame = 0x05;

// Atomic-broadcast payload tags: one client request, or a group-committed
// batch of RFC 2136 updates (count, then per-entry client + wire). The
// format is produced and consumed only in this file.
constexpr std::uint8_t kPayloadSingle = 0x01;
constexpr std::uint8_t kPayloadBatch = 0x02;
/// Seconds before an unanswered batch round stops blocking the next one
/// (liveness backstop; see maybe_submit_updates). Generous: covers several
/// abcast epoch changes under churn without tripping on a healthy round.
constexpr double kBatchWatchdog = 5.0;

Bytes encode_payload(ClientId client, BytesView request) {
  Writer w;
  w.u8(kPayloadSingle);
  w.u64(client);
  w.lp32(request);
  return std::move(w).take();
}

// Whether executing this abcast payload can change the zone. Batches carry
// only updates by construction; singles are classified by the DNS opcode,
// the same test on_client_request uses to route them. Undecodable payloads
// execute as no-ops, so treating them as non-mutating is exact.
bool payload_mutates(BytesView payload) {
  try {
    Reader r(payload);
    const std::uint8_t tag = r.u8();
    if (tag == kPayloadBatch) return true;
    if (tag != kPayloadSingle) return false;
    r.u64();  // client
    const Bytes wire = r.lp32();
    return wire.size() >= 12 && ((wire[2] >> 3) & 0x0f) == 5;
  } catch (const util::ParseError&) {
    return false;
  }
}
}  // namespace

ReplicaNode::ReplicaNode(ReplicaConfig config,
                         std::shared_ptr<const abcast::GroupPublic> group,
                         abcast::NodeSecret group_secret,
                         std::shared_ptr<const threshold::ThresholdPublicKey> zone_key_pub,
                         threshold::KeyShare zone_share, dns::Zone zone,
                         Callbacks callbacks, util::Rng rng, CorruptionMode corruption,
                         std::shared_ptr<const crypto::RsaPrivateKey> local_key)
    : config_(config),
      secret_(std::move(group_secret)),
      zone_key_(std::move(zone_key_pub)),
      zone_share_(std::move(zone_share)),
      server_(std::move(zone), config.update_policy, config.signature_validity),
      cb_(std::move(callbacks)),
      rng_(rng),
      corruption_(corruption),
      local_key_(std::move(local_key)) {
  if (cb_.metrics) {
    metrics_ = cb_.metrics;
  } else {
    own_metrics_ = std::make_unique<obs::Registry>();
    metrics_ = own_metrics_.get();
  }
  if (cb_.store) {
    store_ = cb_.store;
  } else {
    own_store_ = std::make_unique<store::MemoryZoneStore>();
    store_ = own_store_.get();
  }
  server_.set_journal_limit(config_.journal_limit);
  c_reads_ = &metrics_->counter("replica.reads");
  c_updates_ = &metrics_->counter("replica.updates");
  c_signatures_ = &metrics_->counter("replica.signatures");
  c_recoveries_ = &metrics_->counter("replica.recoveries");
  c_recovery_standdowns_ = &metrics_->counter("replica.recovery_standdowns");
  c_update_batches_ = &metrics_->counter("replica.update_batches");
  h_update_batch_size_ = &metrics_->histogram("replica.update_batch_size");
  metrics_->gauge("replica.zone_gen")
      .set(static_cast<std::int64_t>(zone_generation_value()));
  // Threshold counters normally materialize when the first signing session
  // constructs; pre-create them so every scrape exposes the full taxonomy
  // from boot (dashboards can rely on the names existing at 0).
  metrics_->counter("threshold.share.verify_ok");
  metrics_->counter("threshold.share.verify_fail");
  metrics_->counter("threshold.optimistic.hit");
  metrics_->counter("threshold.optimistic.miss");
  metrics_->histogram("threshold.sign_us");
  if (!config_.base_case) {
    abcast::AtomicBroadcast::Callbacks acb;
    acb.send = [this](unsigned to, const Bytes& m) {
      if (!cb_.send_replica) return;
      Writer w;
      w.u8(kAbcastFrame);
      w.raw(m);
      cb_.send_replica(to, std::move(w).take());
    };
    acb.deliver = [this](const Bytes& payload) {
      const abcast::Digest digest = abcast::AtomicBroadcast::digest_of(payload);
      const std::uint64_t seq = abcast_->delivered_count();
      delivery_log_[seq] = digest;
      // Write-ahead log: the committed payload is appended (buffered) here,
      // at delivery; the fsync happens in execute() before the first zone
      // mutation that depends on it. Non-mutating deliveries are logged as
      // cursor marks carrying only their digest, so a replayed log rebuilds
      // the same contiguous safety chain without re-running reads.
      if (payload_mutates(payload)) {
        store_->append(seq, payload, /*mark=*/false);
      } else {
        store_->append(seq, BytesView(digest.data(), digest.size()),
                       /*mark=*/true);
      }
      // Our in-flight batch came back through total order — the round is
      // over, and anything that queued behind it can ride the next one.
      // (Another gateway submitting a byte-identical payload clears the
      // flag early; harmless, it only widens the next batch.)
      if (batch_in_flight_ && in_flight_digest_ && digest == *in_flight_digest_) {
        batch_in_flight_ = false;
        in_flight_digest_.reset();
      }
      exec_queue_.push_back(payload);
      execute_next();
      // The next batch must NOT be submitted from inside the delivery
      // callback: submit() re-enters the broadcast's delivery loop, which
      // would advance its cursor under the running iteration and skip a
      // delivery. Defer to the event loop.
      if (!batch_in_flight_ && !update_queue_.empty() && cb_.set_timer) {
        cb_.set_timer(0.0, [this] { maybe_submit_updates(false); });
      }
    };
    acb.now = cb_.now;
    acb.set_timer = cb_.set_timer;
    acb.charge_message = cb_.charge_message;
    acb.charge_auth_sign = cb_.charge_auth_sign;
    acb.charge_auth_verify = cb_.charge_auth_verify;
    acb.charge_coin = cb_.charge_crypto;
    acb.metrics = metrics_;
    abcast::AtomicBroadcast::Options opt;
    opt.complaint_timeout = config_.complaint_timeout;
    opt.equivocate_as_leader = corruption_ == CorruptionMode::kEquivocate;
    abcast_ = std::make_unique<abcast::AtomicBroadcast>(std::move(group), secret_,
                                                        std::move(acb), opt, rng_.fork());
  }
}

void ReplicaNode::on_client_request(ClientId client, BytesView wire) {
  if (cb_.charge_message) cb_.charge_message();
  if (corruption_ == CorruptionMode::kMute) return;  // ignores its clients
  if (config_.base_case) {
    execute(encode_payload(client, wire));
    return;
  }
  // Reads can bypass atomic broadcast when configured (§3.4 last paragraph).
  if (!config_.disseminate_reads) {
    try {
      dns::Message request = dns::Message::decode(wire);
      if (request.opcode == dns::Opcode::kQuery) {
        run_query(client, request);
        return;
      }
    } catch (const util::ParseError&) {
      return;
    }
  }
  if (corruption_ == CorruptionMode::kGarbagePayload) {
    abcast_->submit(encode_payload(client, rng_.bytes(32)));
    return;
  }
  // Updates go through the group-commit queue; everything else (reads in
  // disseminate mode, unclassifiable noise) is disseminated one per round
  // as before.
  const bool is_update = wire.size() >= 12 && ((wire[2] >> 3) & 0x0f) == 5;
  if (is_update) {
    update_queue_.emplace_back(client, Bytes(wire.begin(), wire.end()));
    maybe_submit_updates(false);
    return;
  }
  abcast_->submit(encode_payload(client, wire));
}

void ReplicaNode::maybe_submit_updates(bool window_elapsed) {
  if (!abcast_) return;
  while (!update_queue_.empty() && !batch_in_flight_) {
    const std::size_t cap = std::max<std::size_t>(1, config_.update_batch_max);
    // A positive window delays the first submit so a burst can gather; an
    // update that queued behind an in-flight round never waits again (the
    // round itself was the window).
    if (!window_elapsed && config_.update_batch_window > 0 && cb_.set_timer &&
        update_queue_.size() < cap) {
      if (!batch_timer_armed_) {
        batch_timer_armed_ = true;
        cb_.set_timer(config_.update_batch_window, [this] {
          batch_timer_armed_ = false;
          maybe_submit_updates(true);
        });
      }
      return;
    }
    const std::size_t count = std::min(cap, update_queue_.size());
    Bytes payload;
    if (count == 1) {
      payload = encode_payload(update_queue_.front().first,
                               update_queue_.front().second);
    } else {
      Writer w;
      w.u8(kPayloadBatch);
      w.u16(static_cast<std::uint16_t>(count));
      for (std::size_t i = 0; i < count; ++i) {
        w.u64(update_queue_[i].first);
        w.lp32(update_queue_[i].second);
      }
      payload = std::move(w).take();
    }
    update_queue_.erase(
        update_queue_.begin(),
        update_queue_.begin() + static_cast<std::ptrdiff_t>(count));
    const abcast::Digest digest = abcast::AtomicBroadcast::digest_of(payload);
    // Clients retry lost-response updates through successive gateways, so a
    // byte-identical payload may already have gone through total order here.
    // Atomic broadcast de-duplicates delivered payloads permanently — this
    // digest will never be delivered again, so waiting on it would wedge
    // the gateway queue forever. The round that delivered it already
    // executed the update (and every replica responded); drop the duplicate
    // and keep draining.
    if (abcast_->already_delivered(digest)) continue;
    batch_in_flight_ = true;
    in_flight_digest_ = digest;
    // Liveness backstop: a replica that skipped deliveries via snapshot
    // recovery has an incomplete delivered-set, so the check above can miss
    // and no delivery will ever clear the flag. The flag only widens
    // batches — it is not a correctness gate — so time it out; a concurrent
    // second round is harmless (abcast de-duplicates pending payloads too).
    if (cb_.set_timer) {
      cb_.set_timer(kBatchWatchdog, [this, digest] {
        if (batch_in_flight_ && in_flight_digest_ &&
            *in_flight_digest_ == digest) {
          batch_in_flight_ = false;
          in_flight_digest_.reset();
          maybe_submit_updates(false);
        }
      });
    }
    abcast_->submit(std::move(payload));
  }
}

void ReplicaNode::on_replica_message(unsigned from, BytesView msg) {
  if (msg.empty()) return;
  const std::uint8_t tag = msg[0];
  BytesView body = msg.subspan(1);
  if (tag == kAbcastFrame) {
    if (abcast_) abcast_->on_message(from, body);
    return;
  }
  if (tag == kSigningFrame) {
    if (cb_.charge_message) cb_.charge_message();
    const auto sid = threshold::SigningSession::peek_session_id(body);
    if (!sid) return;
    if (signing_ && signing_->session_id() == *sid) {
      signing_->on_message(body);
      return;
    }
    // Session not (yet) active here: replicas run signatures sequentially
    // and at different speeds, so buffer messages for future sessions.
    if (*sid > last_finished_sid_) {
      auto& queue = pending_signing_[*sid];
      if (queue.size() < 4096) queue.emplace_back(body.begin(), body.end());
      return;
    }
    // A peer is re-sending shares for a session we already finished — it
    // missed the final-signature broadcast (crash or partition). Answer with
    // the assembled signature so it can complete.
    if (!threshold::SigningSession::is_share_message(body)) return;
    auto done = finished_sigs_.find(*sid);
    if (done != finished_sigs_.end() && cb_.send_replica &&
        corruption_ != CorruptionMode::kMute) {
      Writer w;
      w.u8(kSigningFrame);
      w.raw(threshold::SigningSession::encode_final(*sid, done->second));
      cb_.send_replica(from, std::move(w).take());
    }
    return;
  }
  if (tag == kSnapshotRequestFrame) {
    handle_snapshot_request(from, body);
    return;
  }
  if (tag == kSnapshotFrame) {
    handle_snapshot(from, body);
    return;
  }
  if (tag == kSnapshotCurrentFrame) {
    handle_snapshot_current(from, body);
    return;
  }
}

void ReplicaNode::start_recovery() {
  if (config_.base_case || !cb_.send_replica) return;
  recovering_ = true;
  recovery_snapshots_.clear();
  recovery_current_acks_.clear();
  // The request carries our delivered cursor: a disk-first restart is
  // usually already current, and peers that are not ahead answer with a
  // tiny ack instead of shipping the whole zone.
  Writer w;
  w.u8(kSnapshotRequestFrame);
  w.u64(abcast_->delivered_count());
  const Bytes msg = std::move(w).take();
  for (unsigned i = 0; i < config_.n; ++i) {
    if (i != secret_.id) cb_.send_replica(i, msg);
  }
}

void ReplicaNode::handle_snapshot_request(unsigned from, BytesView body) {
  if (corruption_ == CorruptionMode::kMute) return;
  if (!abcast_ || !cb_.send_replica) return;
  // Cursor hint: when the requester is already at (or ahead of) our
  // delivered cursor there is nothing to transfer — confirm with a
  // "current" ack. Pre-hint requests (empty body) always get a snapshot.
  if (!body.empty()) {
    std::uint64_t hint = 0;
    try {
      Reader r(body);
      hint = r.u64();
      r.expect_done();
    } catch (const util::ParseError&) {
      return;
    }
    if (abcast_->delivered_count() <= hint) {
      Writer w;
      w.u8(kSnapshotCurrentFrame);
      w.u64(abcast_->delivered_count());
      cb_.send_replica(from, std::move(w).take());
      return;
    }
  }
  // Only serve a consistent point: between operations, with the execution
  // queue drained, the zone reflects exactly `deliveries_` executed requests.
  if (executing_ || !exec_queue_.empty()) return;
  Writer w;
  w.u8(kSnapshotFrame);
  w.u64(abcast_->delivered_count());
  w.u64(deliveries_);
  w.u64(update_counter_);
  w.lp32(server_.zone().to_wire());
  cb_.send_replica(from, std::move(w).take());
}

void ReplicaNode::handle_snapshot_current(unsigned from, BytesView body) {
  if (!recovering_) return;
  std::uint64_t cursor = 0;
  try {
    Reader r(body);
    cursor = r.u64();
    r.expect_done();
  } catch (const util::ParseError&) {
    return;
  }
  recovery_current_acks_[from] = cursor;
  try_finish_recovery();
}

void ReplicaNode::handle_snapshot(unsigned from, BytesView body) {
  if (!recovering_) return;
  try {
    Reader r(body);
    Snapshot snap;
    snap.abcast_cursor = r.u64();
    snap.deliveries = r.u64();
    snap.update_counter = r.u64();
    snap.zone_wire = r.lp32();
    r.expect_done();
    recovery_snapshots_[from] = std::move(snap);
  } catch (const util::ParseError&) {
    return;
  }
  try_finish_recovery();
}

void ReplicaNode::try_finish_recovery() {
  // Verify candidates; a snapshot counts once it passes full DNSSEC zone
  // verification (signed zones) or at face value for unsigned ones, where
  // freshness is established by t+1 agreeing on (cursor, zone) instead.
  std::vector<std::pair<unsigned, const Snapshot*>> valid;
  // Keep each candidate's parsed zone so the adopted one installs by move
  // instead of being parsed a second time (candidate count is at most n).
  std::map<const Snapshot*, dns::Zone> parsed;
  for (const auto& [from, snap] : recovery_snapshots_) {
    try {
      dns::Zone zone = dns::Zone::from_wire(snap.zone_wire);
      if (server_.zone_is_signed()) {
        if (!dns::verify_zone(zone).ok) continue;
      }
      valid.push_back({from, &snap});
      parsed.emplace(&snap, std::move(zone));
    } catch (const util::ParseError&) {
    }
  }
  // A "current" ack counts toward the response quorum: the acking peer
  // compared its cursor against ours and found nothing to transfer. With at
  // most t faulty replicas, t+1 responses contain an honest one.
  const std::size_t quorum = static_cast<std::size_t>(config_.t) + 1;
  if (valid.size() + recovery_current_acks_.size() < quorum) return;
  const Snapshot* best = nullptr;
  if (server_.zone_is_signed()) {
    // Signed zone: any verified snapshot is authentic; take the freshest.
    for (const auto& [from, snap] : valid) {
      if (!best || snap->abcast_cursor > best->abcast_cursor) best = snap;
    }
  } else {
    // Unsigned zone: require t+1 identical snapshots (majority evidence).
    std::map<std::string, std::pair<unsigned, const Snapshot*>> votes;
    for (const auto& [from, snap] : valid) {
      Writer key;
      key.u64(snap->abcast_cursor);
      key.lp32(snap->zone_wire);
      auto& entry = votes[util::to_string(key.bytes())];
      entry.first += 1;
      entry.second = snap;
      if (entry.first >= config_.t + 1) best = snap;
    }
  }
  if (!best) {
    // No adoptable snapshot yet. If a quorum of peers confirmed we are
    // current, there is nothing to fetch — the disk-first restore already
    // holds everything the cluster committed.
    if (recovery_current_acks_.size() >= quorum) {
      stand_down_recovery("quorum of peers confirmed local state is current");
    }
    return;
  }
  if (best->abcast_cursor <= abcast_->delivered_count()) {
    // The peers' freshest snapshot is at or behind what we already
    // delivered — adopting it would transfer state for nothing (equal) or
    // roll us back (behind). We are not behind; stand down.
    stand_down_recovery("freshest peer snapshot is not ahead of local state");
    return;
  }
  if (const auto it = parsed.find(best); it != parsed.end()) {
    server_.zone() = std::move(it->second);
  } else {
    server_.zone() = dns::Zone::from_wire(best->zone_wire);
  }
  bump_zone_generation();
  deliveries_ = best->deliveries;
  update_counter_ = best->update_counter;
  abcast_->fast_forward(best->abcast_cursor);
  // Whatever was mid-execution was computed against the pre-snapshot state;
  // the snapshot already contains those operations' effects. Drop the
  // execution pipeline and any in-flight signing work.
  exec_queue_.clear();
  executing_ = false;
  current_update_.reset();
  current_batch_.reset();
  // fast_forward may have skipped the delivery that would have cleared the
  // in-flight flag; leave it set and queued updates would wait forever.
  batch_in_flight_ = false;
  in_flight_digest_.reset();
  retired_session_ = std::move(signing_);
  ++signing_timer_gen_;
  pending_signing_.clear();
  recovering_ = false;
  recovery_snapshots_.clear();
  recovery_current_acks_.clear();
  // Adoption abandoned any boot replay in progress; nothing left to mute.
  suppress_responses_below_ = 0;
  // The WAL's history no longer leads to this state — re-anchor the disk
  // with an unconditional snapshot so the next restart recovers to here.
  store_->checkpoint([this] { return make_store_state(); });
  ++recoveries_completed_;
  c_recoveries_->inc();
  SDNS_LOG_INFO("replica ", secret_.id, ": recovered to delivery cursor ",
                best->abcast_cursor);
  maybe_submit_updates(false);
}

void ReplicaNode::stand_down_recovery(const char* why) {
  recovering_ = false;
  recovery_snapshots_.clear();
  recovery_current_acks_.clear();
  c_recovery_standdowns_->inc();
  SDNS_LOG_INFO("replica ", secret_.id, ": recovery stand-down at cursor ",
                abcast_ ? abcast_->delivered_count() : 0, ": ", why);
}

store::ZoneState ReplicaNode::make_store_state() const {
  store::ZoneState state;
  state.abcast_cursor = abcast_ ? abcast_->delivered_count() : deliveries_;
  state.deliveries = deliveries_;
  state.update_counter = update_counter_;
  state.zone_generation = zone_generation_value();
  state.zone_wire = server_.zone().to_wire();
  return state;
}

void ReplicaNode::restore_from_store(const store::RecoveredState& recovered) {
  if (!recovered.usable() || config_.base_case || !abcast_) return;
  std::uint64_t cursor = 0;
  if (recovered.snapshot) {
    const store::ZoneState& snap = *recovered.snapshot;
    // The snapshot verifier already parsed the zone; install its stash
    // instead of re-parsing the wire (the second parse used to dominate a
    // 1M-RRset cold restart). The fallback parse covers stores opened with
    // a null or stash-less verifier.
    const auto* cached =
        std::any_cast<std::shared_ptr<dns::Zone>>(&snap.verified_zone);
    if (cached && *cached && (*cached)->rrset_count() != 0) {
      // rrset_count() == 0 means the stash was already consumed (or holds a
      // trivial zone) — re-parse rather than install a moved-from object.
      server_.zone() = std::move(**cached);
    } else {
      try {
        server_.zone() = dns::Zone::from_wire(snap.zone_wire);
      } catch (const util::ParseError&) {
        // The store verified the snapshot already; an unparseable zone here
        // means the verifier was disabled. Treat the disk as empty.
        SDNS_LOG_WARN("replica ", secret_.id,
                      ": recovered snapshot zone does not parse, ignoring disk");
        return;
      }
    }
    deliveries_ = snap.deliveries;
    update_counter_ = snap.update_counter;
    cursor = snap.abcast_cursor;
  }
  std::size_t replayed = 0;
  for (const store::WalRecord& rec : recovered.tail) {
    cursor = rec.seq + 1;
    if (rec.mark) {
      // Non-mutating delivery: the record carries the payload's abcast
      // digest, so the safety chain over the delivery log is rebuilt
      // byte-identically without re-running the read.
      abcast::Digest digest{};
      if (rec.payload.size() == digest.size()) {
        std::copy(rec.payload.begin(), rec.payload.end(), digest.begin());
        delivery_log_[rec.seq] = digest;
      }
      ++deliveries_;
      continue;
    }
    delivery_log_[rec.seq] = abcast::AtomicBroadcast::digest_of(rec.payload);
    exec_queue_.push_back(rec.payload);
    ++replayed;
  }
  abcast_->fast_forward(cursor);
  // Replayed operations answered their clients in a previous life; the
  // re-execution below must stay silent (see respond()). Signing sessions
  // re-run with the same deterministic ids, and peers that already finished
  // them answer our re-sent shares with the assembled final signature.
  suppress_responses_below_ = deliveries_ + exec_queue_.size();
  bump_zone_generation();
  SDNS_LOG_INFO("replica ", secret_.id, ": disk-first restore to cursor ",
                cursor, ", replaying ", replayed, " logged operations");
  execute_next();
}

void ReplicaNode::install_zone_share(
    std::shared_ptr<const threshold::ThresholdPublicKey> pub,
    threshold::KeyShare share) {
  if (zone_key_) old_zone_keys_.push_back(zone_key_);
  zone_key_ = std::move(pub);
  zone_share_ = std::move(share);
  // Served records don't change, but signatures produced from here on come
  // from the refreshed share; treat it as a new signature generation.
  bump_zone_generation();
}

void ReplicaNode::execute_next() {
  while (!executing_ && !exec_queue_.empty()) {
    executing_ = true;
    Bytes payload = std::move(exec_queue_.front());
    exec_queue_.pop_front();
    execute(payload);
    // execute() clears executing_ for synchronous operations; updates with
    // signature work leave it set until finish_update().
  }
  // Idle between operations: the zone reflects exactly `deliveries_`
  // executed requests, so the store may take a consistent snapshot (it
  // does only when its log-bytes threshold says one is due).
  if (!executing_ && exec_queue_.empty() && !recovering_) {
    store_->maybe_snapshot([this] { return make_store_state(); });
  }
}

void ReplicaNode::execute(const Bytes& payload) {
  ++deliveries_;
  // Write-ahead invariant: everything appended up to and including this
  // payload becomes durable before its mutation applies. Group commit —
  // one fsync covers every record buffered since the last sync, e.g. a
  // whole update batch plus any payloads that queued behind an in-flight
  // signing session. No-op for non-mutating payloads and a clean log.
  if (payload_mutates(payload)) store_->sync();
  ClientId client = 0;
  dns::Message request;
  try {
    Reader r(payload);
    const std::uint8_t tag = r.u8();
    if (tag == kPayloadBatch) {
      UpdateBatch batch;
      const std::uint16_t count = r.u16();
      batch.entries.reserve(count);
      for (std::uint16_t i = 0; i < count; ++i) {
        const ClientId entry_client = r.u64();
        const Bytes wire = r.lp32();
        batch.entries.emplace_back(entry_client, dns::Message::decode(wire));
      }
      r.expect_done();
      if (batch.entries.empty()) {
        executing_ = false;
        return;
      }
      current_batch_ = std::move(batch);
      continue_batch();
      return;
    }
    if (tag != kPayloadSingle) throw util::ParseError("bad payload tag");
    client = r.u64();
    const Bytes wire = r.lp32();
    r.expect_done();
    request = dns::Message::decode(wire);
  } catch (const util::ParseError&) {
    SDNS_LOG_DEBUG("replica ", secret_.id, ": undecodable request payload");
    executing_ = false;
    return;
  }
  if (request.opcode == dns::Opcode::kUpdate) {
    run_update(client, request);
  } else {
    run_query(client, request);
    executing_ = false;
  }
}

void ReplicaNode::continue_batch() {
  // Drive the batch's entries in order. An entry whose signing work is
  // asynchronous leaves `next` unchanged until finish_update() advances it
  // (via complete_update), which re-enters this loop.
  while (current_batch_ && current_batch_->next < current_batch_->entries.size()) {
    const std::size_t before = current_batch_->next;
    const auto& entry = current_batch_->entries[before];
    batch_stepping_ = true;
    if (entry.second.opcode == dns::Opcode::kUpdate) {
      run_update(entry.first, entry.second);
    } else {
      // A batch payload should only carry updates; execute anything else
      // deterministically anyway (a corrupt gateway controls the content).
      run_query(entry.first, entry.second);
      ++current_batch_->next;
    }
    batch_stepping_ = false;
    if (current_batch_ && current_batch_->next == before) return;  // suspended
  }
  if (current_batch_) finish_batch();
}

void ReplicaNode::finish_batch() {
  UpdateBatch batch = std::move(*current_batch_);
  current_batch_.reset();
  // One generation bump covers every mutation in the batch. Mid-batch
  // reads were answered with new content under the old generation — those
  // cache entries flush right here, before any update response below can
  // tell a client its write is done, so the no-stale invariant holds.
  if (batch.dirty) bump_zone_generation();
  c_update_batches_->inc();
  h_update_batch_size_->observe(batch.entries.size());
  for (const auto& [client, response] : batch.responses) {
    respond(client, response);
  }
  executing_ = false;
  execute_next();
}

void ReplicaNode::complete_update() {
  if (current_batch_) {
    ++current_batch_->next;
    // Inside the continue_batch loop the step counter is enough; from an
    // asynchronous finish_update the loop must be re-entered.
    if (!batch_stepping_) continue_batch();
    return;
  }
  executing_ = false;
  execute_next();
}

void ReplicaNode::note_zone_mutated() {
  if (current_batch_) {
    current_batch_->dirty = true;
    return;
  }
  bump_zone_generation();
}

void ReplicaNode::respond_update(ClientId client, const dns::Message& response) {
  if (current_batch_) {
    current_batch_->responses.emplace_back(client, response);
    return;
  }
  respond(client, response);
}

void ReplicaNode::run_query(ClientId client, const dns::Message& request) {
  ++executed_reads_;
  c_reads_->inc();
  if (cb_.charge_dns_query) cb_.charge_dns_query();
  respond(client, server_.answer_query(request));
}

void ReplicaNode::run_update(ClientId client, const dns::Message& request) {
  ++executed_updates_;
  c_updates_->inc();
  if (cb_.charge_dns_update) cb_.charge_dns_update();
  // Deterministic logical inception time shared by all replicas.
  const std::uint32_t inception =
      1'000'000 + static_cast<std::uint32_t>(update_counter_);
  ++update_counter_;
  dns::UpdateResult result = server_.apply_update(request, inception);
  // The generation must be ahead of any response computed against the new
  // zone, so bump before responding — a frontend shard can then never stamp
  // a fresh answer with a stale generation. Inside a batch both the bump
  // and the responses are deferred to finish_batch(), which preserves the
  // same ordering at batch granularity.
  if (result.rcode == dns::Rcode::kNoError) note_zone_mutated();
  if (result.rcode != dns::Rcode::kNoError || result.sig_tasks.empty()) {
    respond_update(client,
                   dns::AuthoritativeServer::update_response(request, result.rcode));
    complete_update();
    return;
  }
  if (config_.base_case) {
    // Unmodified named: sign locally with the zone's private key.
    for (const auto& task : result.sig_tasks) {
      if (cb_.charge_local_sign) cb_.charge_local_sign();
      server_.install_signature(task, crypto::rsa_sign_sha1(*local_key_, task.data));
      ++signatures_computed_;
      c_signatures_->inc();
    }
    server_.finalize_journal();
    note_zone_mutated();
    respond_update(client, dns::AuthoritativeServer::update_response(
                               request, dns::Rcode::kNoError));
    complete_update();
    return;
  }
  current_update_ = PendingUpdate{client, request, std::move(result.sig_tasks), 0};
  start_next_signature();
}

void ReplicaNode::start_next_signature() {
  PendingUpdate& update = *current_update_;
  const std::size_t index = update.next_task;
  const dns::SigTask& task = update.tasks[index];
  // Session ids are derived from the deterministic execution sequence, so
  // every replica runs the same session for the same SIG record.
  const std::uint64_t sid = (update_counter_ << 8) | index;
  const bn::BigInt x = threshold::hash_to_element(*zone_key_, task.data);
  threshold::SessionCallbacks scb;
  scb.send_to_all = [this](const Bytes& m) {
    if (!cb_.send_replica) return;
    Writer w;
    w.u8(kSigningFrame);
    w.raw(m);
    const Bytes framed = std::move(w).take();
    for (unsigned i = 0; i < config_.n; ++i) {
      if (i != secret_.id) cb_.send_replica(i, framed);
    }
  };
  scb.charge = cb_.charge_crypto;
  scb.metrics = metrics_;
  scb.now = cb_.now;
  scb.on_complete = [this, index](const bn::BigInt& y) {
    PendingUpdate& u = *current_update_;
    server_.install_signature(u.tasks[index], threshold::signature_bytes(*zone_key_, y));
    note_zone_mutated();
    ++signatures_computed_;
    c_signatures_->inc();
    last_finished_sid_ = signing_->session_id();
    pending_signing_.erase(last_finished_sid_);
    finished_sigs_[last_finished_sid_] = y;
    while (finished_sigs_.size() > 128) finished_sigs_.erase(finished_sigs_.begin());
    ++u.next_task;
    if (u.next_task < u.tasks.size()) {
      // named computes SIG records sequentially (§5.2).
      start_next_signature();
    } else {
      finish_update();
    }
  };
  const threshold::ShareCorruption share_corruption =
      corruption_ == CorruptionMode::kFlipShares    ? threshold::ShareCorruption::kFlipShare
      : corruption_ == CorruptionMode::kMute        ? threshold::ShareCorruption::kMute
      : corruption_ == CorruptionMode::kGarbageShares
          ? threshold::ShareCorruption::kGarbage
          : threshold::ShareCorruption::kNone;
  // The transition runs inside the previous session's completion callback;
  // retire it instead of destroying it out from under itself.
  retired_session_ = std::move(signing_);
  signing_ = std::make_unique<threshold::SigningSession>(
      *zone_key_, zone_share_, config_.sig_protocol, sid, x, std::move(scb), rng_.fork(),
      share_corruption);
  signing_->start();
  arm_signing_timer();
  // Replay any shares that arrived before we reached this session.
  auto it = pending_signing_.find(sid);
  if (it != pending_signing_.end()) {
    auto buffered = std::move(it->second);
    pending_signing_.erase(it);
    for (const Bytes& m : buffered) {
      if (signing_ && signing_->session_id() == sid && !signing_->done()) {
        signing_->on_message(m);
      }
    }
  }
}

void ReplicaNode::arm_signing_timer() {
  if (!cb_.set_timer || !signing_) return;
  // Shares are broadcast exactly once; a peer that was crashed or cut off at
  // that moment would wedge the session forever. Re-send this server's
  // contribution periodically until the session completes (then once more,
  // as the final signature, for stragglers).
  schedule_signing_resend(++signing_timer_gen_, signing_->session_id());
}

void ReplicaNode::schedule_signing_resend(std::uint64_t gen, std::uint64_t sid,
                                          unsigned attempts) {
  // Bounded so a session that can never complete (more than t corrupt or
  // crashed peers) does not keep the event queue alive forever.
  if (attempts >= 64) return;
  cb_.set_timer(config_.complaint_timeout, [this, gen, sid, attempts] {
    if (gen != signing_timer_gen_ || !signing_ || signing_->session_id() != sid) return;
    signing_->resend();
    if (!signing_->done()) schedule_signing_resend(gen, sid, attempts + 1);
  });
}

void ReplicaNode::finish_update() {
  server_.finalize_journal();  // the diff now includes the fresh signatures
  PendingUpdate update = std::move(*current_update_);
  current_update_.reset();
  retired_session_ = std::move(signing_);
  respond_update(update.client,
                 dns::AuthoritativeServer::update_response(update.request,
                                                           dns::Rcode::kNoError));
  complete_update();
}

void ReplicaNode::bump_zone_generation() {
  // Release pairs with the acquire load in the frontend shards: by the time
  // a shard observes the new generation, the mutation that caused it has
  // already happened-before on this (the only mutating) thread.
  const auto next =
      zone_generation_.fetch_add(1, std::memory_order_release) + 1;
  metrics_->gauge("replica.zone_gen").set(static_cast<std::int64_t>(next));
  if (cb_.zone_committed) cb_.zone_committed(next);
}

void ReplicaNode::respond(ClientId client, const dns::Message& response) {
  // Boot replay after a disk-first restore: these operations' clients were
  // answered before the crash; re-executing must not answer again. Direct
  // reads arrive outside the execution pipeline (executing_ == false) and
  // are served normally throughout.
  if (executing_ && deliveries_ <= suppress_responses_below_) return;
  if (!cb_.send_client || corruption_ == CorruptionMode::kMute) return;
  Bytes wire = response.encode();
  if (corruption_ == CorruptionMode::kStaleReplay && !response.questions.empty() &&
      response.opcode == dns::Opcode::kQuery) {
    const std::string key = response.questions.front().name.canonical().to_string() +
                            "/" + dns::to_string(response.questions.front().type);
    auto [it, inserted] = stale_cache_.emplace(key, wire);
    if (!inserted) {
      // Replay the first response ever given, patched to the current id so
      // the client matches it to its request.
      try {
        dns::Message stale = dns::Message::decode(it->second);
        stale.id = response.id;
        wire = stale.encode();
      } catch (const util::ParseError&) {
      }
    }
  }
  cb_.send_client(client, wire);
}

}  // namespace sdns::core
