#include "core/client.hpp"

#include "dns/dnssec.hpp"
#include "util/log.hpp"

namespace sdns::core {

using util::Bytes;
using util::BytesView;

Client::Client(Options options, Callbacks callbacks, util::Rng rng)
    : opt_(options), cb_(std::move(callbacks)), rng_(rng) {}

bool Client::response_acceptable(const dns::Message& response,
                                 const std::optional<crypto::RsaPublicKey>& zone_key) {
  if (response.opcode == dns::Opcode::kUpdate) {
    return response.rcode == dns::Rcode::kNoError;
  }
  if (response.rcode != dns::Rcode::kNoError &&
      response.rcode != dns::Rcode::kNxDomain) {
    return false;
  }
  if (!zone_key) return true;

  // Group the answer + authority sections into RRsets and their SIGs.
  struct Group {
    dns::RRset rrset;
    std::vector<dns::SigRdata> sigs;
  };
  std::map<std::string, Group> groups;
  auto collect = [&](const std::vector<dns::ResourceRecord>& section) {
    for (const auto& rr : section) {
      if (rr.type == dns::RRType::kTSIG) continue;
      if (rr.type == dns::RRType::kSIG) {
        try {
          const dns::SigRdata sig = dns::SigRdata::decode(rr.rdata);
          const std::string key = rr.name.canonical().to_string() + "/" +
                                  dns::to_string(sig.type_covered);
          groups[key].sigs.push_back(sig);
        } catch (const util::ParseError&) {
          return;
        }
      } else {
        const std::string key =
            rr.name.canonical().to_string() + "/" + dns::to_string(rr.type);
        Group& g = groups[key];
        g.rrset.name = rr.name;
        g.rrset.type = rr.type;
        g.rrset.ttl = rr.ttl;
        g.rrset.rdatas.push_back(rr.rdata);
      }
    }
  };
  collect(response.answers);
  collect(response.authority);
  for (const auto& [key, group] : groups) {
    if (group.rrset.rdatas.empty()) continue;  // orphan SIG: ignore
    bool verified = false;
    for (const auto& sig : group.sigs) {
      if (dns::verify_rrset_sig(group.rrset, sig, *zone_key)) {
        verified = true;
        break;
      }
    }
    if (!verified) return false;
  }
  // A positive answer must contain at least one signed RRset; a negative
  // answer must carry the (signed) SOA denial.
  return !groups.empty();
}

void Client::query(const dns::Name& name, dns::RRType type,
                   std::function<void(Result)> done) {
  const std::uint16_t id = next_id_++;
  Op op;
  op.request = dns::Message::make_query(id, name, type);
  op.done = std::move(done);
  op.start = cb_.now ? cb_.now() : 0;
  op.current_server = opt_.first_server;
  inflight_[id] = std::move(op);
  dispatch(id);
}

void Client::send_update(dns::Message update, std::function<void(Result)> done) {
  const std::uint16_t id = next_id_++;
  update.id = id;
  Op op;
  op.request = std::move(update);
  op.done = std::move(done);
  op.start = cb_.now ? cb_.now() : 0;
  op.current_server = opt_.first_server;
  inflight_[id] = std::move(op);
  dispatch(id);
}

void Client::dispatch(std::uint16_t id) {
  Op& op = inflight_.at(id);
  const Bytes wire = op.request.encode();
  if (opt_.mode == ClientMode::kVoting) {
    for (unsigned i = 0; i < opt_.n; ++i) cb_.send(i, wire);
  } else {
    cb_.send(op.current_server, wire);
  }
  arm_timeout(id);
}

void Client::arm_timeout(std::uint16_t id) {
  if (!cb_.set_timer) return;
  const std::uint64_t generation = inflight_.at(id).generation;
  cb_.set_timer(opt_.timeout, [this, id, generation] {
    auto it = inflight_.find(id);
    if (it == inflight_.end() || it->second.generation != generation) return;
    Op& op = it->second;
    if (op.tries >= opt_.max_tries) {
      Result r;
      r.ok = false;
      r.latency = (cb_.now ? cb_.now() : 0) - op.start;
      r.tries = op.tries;
      finish(id, std::move(r));
      return;
    }
    ++op.tries;
    ++op.generation;
    // dig/nsupdate behavior: try the next authoritative server round-robin.
    op.current_server = (op.current_server + 1) % opt_.n;
    SDNS_LOG_DEBUG("client: timeout on id ", id, ", retrying server ", op.current_server);
    dispatch(id);
  });
}

void Client::on_response(unsigned from, BytesView wire) {
  dns::Message response;
  try {
    response = dns::Message::decode(wire);
  } catch (const util::ParseError&) {
    return;
  }
  const std::uint16_t rid = response.id;
  auto it = inflight_.find(rid);
  if (it == inflight_.end()) return;
  Op& op = it->second;
  if (!response.qr || response.questions != op.request.questions) return;

  if (opt_.mode == ClientMode::kPragmatic) {
    // An unmodified resolver ignores responses from addresses it did not
    // query — it takes "the message from the gateway" (§3.4).
    if (from != op.current_server) return;
    if (!response_acceptable(response, opt_.zone_key)) {
      // For updates a definite failure rcode is still an answer; only
      // unverifiable/failed query responses are ignored (wait or retry).
      if (response.opcode == dns::Opcode::kUpdate) {
        Result r;
        r.ok = false;
        r.response = std::move(response);
        r.latency = (cb_.now ? cb_.now() : 0) - op.start;
        r.server = from;
        r.tries = op.tries;
        finish(rid, std::move(r));
      }
      return;
    }
    Result r;
    r.ok = true;
    r.response = std::move(response);
    r.latency = (cb_.now ? cb_.now() : 0) - op.start;
    r.server = from;
    r.tries = op.tries;
    finish(rid, std::move(r));
    return;
  }

  // Voting: count byte-identical responses; accept at t+1 matching copies.
  if (op.responded.count(from)) return;
  op.responded[from] = true;
  const std::string key(wire.begin(), wire.end());
  auto& entry = op.votes[key];
  entry.first += 1;
  entry.second = from;
  if (entry.first >= opt_.t + 1) {
    Result r;
    r.ok = response_acceptable(response, opt_.zone_key);
    r.response = std::move(response);
    r.latency = (cb_.now ? cb_.now() : 0) - op.start;
    r.server = entry.first;  // majority size
    r.tries = op.tries;
    finish(rid, std::move(r));
  }
}

void Client::finish(std::uint16_t id, Result result) {
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return;
  auto done = std::move(it->second.done);
  inflight_.erase(it);
  if (done) done(std::move(result));
}

}  // namespace sdns::core
