// ReplicaNode — the paper's Wrapper plus its modified `named`.
//
// One instance runs on every authoritative server of the zone.  It
//  - accepts client requests on "port 53" (on_client_request), acting as the
//    gateway of the pragmatic design: the request is disseminated to all
//    replicas over atomic broadcast (§3.4);
//  - executes delivered requests against its local zone copy in delivery
//    order (state-machine replication), strictly one at a time;
//  - for dynamic updates in the signed zone, runs the configured threshold
//    signature protocol (BASIC / OPTPROOF / OPTTE) once per SIG record the
//    update requires — sequentially, as the paper observed named does
//    (4 signatures for an add, 2 for a delete, §5.2);
//  - sends the response directly to the client (every replica does, so
//    voting clients can take a majority, §3.3).
//
// Corruption modes implement the paper's testbed misbehaviors (§4.4).
#pragma once

#include <atomic>
#include <deque>
#include <memory>

#include "abcast/broadcast.hpp"
#include "core/config.hpp"
#include "crypto/rsa.hpp"
#include "dns/server.hpp"
#include "store/store.hpp"
#include "threshold/protocol.hpp"

namespace sdns::core {

/// Clients are addressed by opaque ids (the simulator's node ids).
using ClientId = std::uint64_t;

class ReplicaNode {
 public:
  struct Callbacks {
    /// Replica-to-replica channel (authenticated point-to-point links).
    std::function<void(unsigned to, const util::Bytes&)> send_replica;
    /// Reply channel to a client.
    std::function<void(ClientId, const util::Bytes&)> send_client;
    std::function<double()> now;
    std::function<void(double, std::function<void()>)> set_timer;
    /// Fired (optional) after every zone-generation bump with the new value
    /// — the commit points: an applied update batch, an installed threshold
    /// signature, a recovery or disk-restore reinstall. The runtime hangs
    /// RFC 1996 NOTIFY fan-out off this.
    std::function<void(std::uint64_t)> zone_committed;
    // Cost hooks (all optional).
    std::function<void(threshold::CryptoOp)> charge_crypto;
    std::function<void()> charge_message;
    std::function<void()> charge_auth_sign;
    std::function<void()> charge_auth_verify;
    std::function<void()> charge_dns_query;
    std::function<void()> charge_dns_update;
    std::function<void()> charge_local_sign;
    /// Metrics sink; when null the replica owns a private registry so its
    /// counters (and the components' below it) are still introspectable.
    obs::Registry* metrics = nullptr;
    /// Durable zone store (write-ahead log + snapshots). When null the
    /// replica owns a no-op in-memory store, so the commit hook — append on
    /// delivery, fsync before the mutation applies, snapshot offer when
    /// idle — is exercised on every path, persisted or not.
    store::ZoneStoreIf* store = nullptr;
  };

  /// `zone_share` is this server's share of the zone key; `zone_key_pub` the
  /// threshold public key (both from the trusted dealer, §4.3).  In
  /// base_case mode, `local_key` signs instead and the group material is
  /// unused.
  ReplicaNode(ReplicaConfig config, std::shared_ptr<const abcast::GroupPublic> group,
              abcast::NodeSecret group_secret,
              std::shared_ptr<const threshold::ThresholdPublicKey> zone_key_pub,
              threshold::KeyShare zone_share, dns::Zone zone, Callbacks callbacks,
              util::Rng rng, CorruptionMode corruption = CorruptionMode::kHonest,
              std::shared_ptr<const crypto::RsaPrivateKey> local_key = nullptr);

  /// A DNS request arrived from a client (gateway role).
  void on_client_request(ClientId client, util::BytesView wire);

  /// A message from another replica (atomic broadcast or signing protocol).
  void on_replica_message(unsigned from, util::BytesView msg);

  /// Ask the other replicas for a zone snapshot (AXFR-style state transfer)
  /// and reinstall the freshest one that t+1 replicas vouch for — the
  /// recovery path for a repaired or long-partitioned server. The snapshot
  /// is trusted because the zone is threshold-signed (each candidate must
  /// pass full DNSSEC verification); freshness comes from taking the
  /// highest execution counter among >= t+1 verified snapshots, at least
  /// one of which is honest.
  void start_recovery();
  bool recovering() const { return recovering_; }
  std::uint64_t recoveries_completed() const { return recoveries_completed_; }

  /// Disk-first recovery: install the state the durable store recovered —
  /// zone and counters from the verified snapshot, then the WAL tail queued
  /// for replay through the normal execution path (signing sessions re-run
  /// deterministically; peers that already finished answer re-sent shares
  /// with the final signature). Responses for replayed operations are
  /// suppressed — their clients were answered in the previous life. Call
  /// once, right after construction, before serving traffic. A subsequent
  /// start_recovery() then asks the peers only whether the disk is behind:
  /// peers at or below our cursor send a small "current" ack instead of a
  /// full snapshot, and t+1 such acks stand the recovery down without any
  /// state transfer.
  void restore_from_store(const store::RecoveredState& recovered);

  /// Proactive share refresh (§4.3): install a re-dealt share of the *same*
  /// RSA key (N, e unchanged; verification values v, v_i re-randomized). The
  /// new public key is kept alongside the old ones so signing sessions still
  /// in flight — which hold references into the previous key — stay valid.
  void install_zone_share(std::shared_ptr<const threshold::ThresholdPublicKey> pub,
                          threshold::KeyShare share);

  /// Every payload this replica delivered through atomic broadcast, as
  /// (sequence number -> SHA-256 of payload). The chaos harness compares
  /// these maps across replicas to check abcast agreement; entries skipped
  /// by snapshot recovery (fast_forward) are simply absent.
  const std::map<std::uint64_t, abcast::Digest>& delivery_log() const {
    return delivery_log_;
  }

  unsigned id() const { return secret_.id; }
  const dns::AuthoritativeServer& server() const { return server_; }
  dns::AuthoritativeServer& server() { return server_; }
  const abcast::AtomicBroadcast& abcast() const { return *abcast_; }
  /// The registry this replica counts into (the caller's, or the private
  /// fallback created when Callbacks::metrics was null).
  obs::Registry& metrics() { return *metrics_; }
  const obs::Registry& metrics() const { return *metrics_; }

  // Statistics for benches.
  std::uint64_t executed_reads() const { return executed_reads_; }
  std::uint64_t executed_updates() const { return executed_updates_; }
  std::uint64_t signatures_computed() const { return signatures_computed_; }

  /// Zone-generation counter: bumped (release) on the replica thread for
  /// every observable zone mutation — an applied RFC 2136 update, an
  /// installed threshold signature, a recovery reinstall. Frontend shards
  /// read it (acquire) to stamp and lazily invalidate packet-cache entries;
  /// it never decreases. Starts at 1 so generation 0 can mean "no replica
  /// attached" in frontend unit tests.
  const std::atomic<std::uint64_t>& zone_generation() const {
    return zone_generation_;
  }
  std::uint64_t zone_generation_value() const {
    return zone_generation_.load(std::memory_order_acquire);
  }

 private:
  struct PendingUpdate {
    ClientId client;
    dns::Message request;
    std::vector<dns::SigTask> tasks;
    std::size_t next_task = 0;
  };

  struct Snapshot {
    std::uint64_t abcast_cursor = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t update_counter = 0;
    util::Bytes zone_wire;
  };

  /// A delivered batch payload mid-execution. Entries run strictly in
  /// order; the zone-generation bump and every update response are
  /// deferred to finish_batch() so no client can see a NOERROR before the
  /// flush-triggering bump (the packet cache's no-stale invariant holds at
  /// batch granularity).
  struct UpdateBatch {
    std::vector<std::pair<ClientId, dns::Message>> entries;
    std::size_t next = 0;
    std::vector<std::pair<ClientId, dns::Message>> responses;
    bool dirty = false;  ///< a zone mutation happened; one bump is owed
  };

  void execute_next();
  void execute(const util::Bytes& payload);
  void handle_snapshot_request(unsigned from, util::BytesView body);
  void handle_snapshot(unsigned from, util::BytesView body);
  void handle_snapshot_current(unsigned from, util::BytesView body);
  void try_finish_recovery();
  void stand_down_recovery(const char* why);
  store::ZoneState make_store_state() const;
  void run_query(ClientId client, const dns::Message& request);
  void run_update(ClientId client, const dns::Message& request);
  void start_next_signature();
  void arm_signing_timer();
  void schedule_signing_resend(std::uint64_t gen, std::uint64_t sid,
                               unsigned attempts = 0);
  void finish_update();
  void respond(ClientId client, const dns::Message& response);
  std::uint64_t next_session_id();
  void bump_zone_generation();
  // Update batching (gateway side + execution side).
  void maybe_submit_updates(bool window_elapsed);
  void continue_batch();
  void finish_batch();
  void complete_update();
  void note_zone_mutated();
  void respond_update(ClientId client, const dns::Message& response);

  ReplicaConfig config_;
  abcast::NodeSecret secret_;
  std::shared_ptr<const threshold::ThresholdPublicKey> zone_key_;
  threshold::KeyShare zone_share_;
  dns::AuthoritativeServer server_;
  Callbacks cb_;
  util::Rng rng_;
  CorruptionMode corruption_;
  std::shared_ptr<const crypto::RsaPrivateKey> local_key_;

  std::unique_ptr<abcast::AtomicBroadcast> abcast_;
  std::deque<util::Bytes> exec_queue_;
  bool executing_ = false;
  std::optional<PendingUpdate> current_update_;
  // Gateway-side group commit: updates wait here while a batch round is in
  // flight (or, with a positive window, until it elapses), then ride out
  // together as one payload. The in-flight flag clears when the submitted
  // payload's digest comes back through delivery.
  std::deque<std::pair<ClientId, util::Bytes>> update_queue_;
  bool batch_in_flight_ = false;
  bool batch_timer_armed_ = false;
  std::optional<abcast::Digest> in_flight_digest_;
  // Execution-side state for a delivered batch payload.
  std::optional<UpdateBatch> current_batch_;
  bool batch_stepping_ = false;  ///< complete_update ran inside the loop
  std::unique_ptr<threshold::SigningSession> signing_;
  /// The previous session, kept alive because transitions happen inside its
  /// completion callback.
  std::unique_ptr<threshold::SigningSession> retired_session_;
  /// Shares arriving for sessions this (slower) replica has not reached yet.
  std::map<std::uint64_t, std::vector<util::Bytes>> pending_signing_;
  std::uint64_t last_finished_sid_ = 0;
  /// Assembled signatures of recently finished sessions, kept so a lagging
  /// peer re-sending shares for an old session gets the final signature back
  /// instead of silence (liveness across crashes and partitions).
  std::map<std::uint64_t, bn::BigInt> finished_sigs_;
  /// Generation counter for the per-session share-resend timer; bumping it
  /// invalidates timers armed for superseded sessions.
  std::uint64_t signing_timer_gen_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t update_counter_ = 0;
  std::map<std::uint64_t, abcast::Digest> delivery_log_;
  /// Superseded public keys from share refreshes, kept alive for sessions
  /// (current or retired) that still reference them.
  std::vector<std::shared_ptr<const threshold::ThresholdPublicKey>> old_zone_keys_;

  std::uint64_t executed_reads_ = 0;
  std::uint64_t executed_updates_ = 0;
  std::uint64_t signatures_computed_ = 0;
  std::atomic<std::uint64_t> zone_generation_{1};

  /// Private registry when Callbacks::metrics is null (the simulator runs
  /// many replicas per process; each needs its own counter namespace).
  std::unique_ptr<obs::Registry> own_metrics_;
  obs::Registry* metrics_ = nullptr;
  obs::Counter* c_reads_;
  obs::Counter* c_updates_;
  obs::Counter* c_signatures_;
  obs::Counter* c_recoveries_;
  obs::Counter* c_recovery_standdowns_;
  obs::Counter* c_update_batches_;
  obs::Histogram* h_update_batch_size_;

  /// The durable (or no-op) store behind Callbacks::store.
  std::unique_ptr<store::MemoryZoneStore> own_store_;
  store::ZoneStoreIf* store_ = nullptr;
  /// Boot replay: responses whose delivery number is at or below this were
  /// already sent in a previous life; re-executing must stay silent.
  std::uint64_t suppress_responses_below_ = 0;

  // kStaleReplay: first response recorded per question.
  std::map<std::string, util::Bytes> stale_cache_;

  // Recovery state.
  bool recovering_ = false;
  std::map<unsigned, Snapshot> recovery_snapshots_;
  /// Peers that answered the snapshot request with "you are current"
  /// (their cursor <= ours) instead of a full snapshot.
  std::map<unsigned, std::uint64_t> recovery_current_acks_;
  std::uint64_t recoveries_completed_ = 0;
};

}  // namespace sdns::core
