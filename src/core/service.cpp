#include "core/service.hpp"

#include <stdexcept>

#include "dns/dnssec.hpp"
#include "threshold/fixtures.hpp"

namespace sdns::core {

using util::Bytes;
using util::Rng;

namespace {
// Rng stream ids for the non-replica actors. Replica i uses stream i, so
// these live far above any realistic node count; per-node streams mean
// adding a node to a scenario never perturbs the others' randomness.
constexpr std::uint64_t kNetworkStream = 0xFFFF'0000'0000'0001ULL;
constexpr std::uint64_t kClientStream = 0xFFFF'0000'0000'0002ULL;
constexpr std::uint64_t kSignerStream = 0xFFFF'0000'0000'0003ULL;
constexpr std::uint64_t kRefreshStream = 0xFFFF'0000'0001'0000ULL;
}  // namespace

ReplicatedService::ReplicatedService(ServiceOptions options, const dns::Name& origin,
                                     std::string_view zone_text)
    : opt_(std::move(options)), origin_(origin) {
  bed_ = sim::make_testbed(opt_.topology);
  n_ = static_cast<unsigned>(bed_.replica_count());
  t_ = (n_ - 1) / 3;  // the paper's t = (n-1)/3
  Rng rng(opt_.seed);

  net_ = std::make_unique<sim::Network>(sim_, Rng(opt_.seed, kNetworkStream),
                                        bed_.machines.size(), 0.0005);
  sim::apply_testbed(bed_, *net_);

  tsig_key_ = {"update-key", util::to_bytes("sdns shared update secret")};

  const bool base = n_ == 1;

  // ---- trusted setup (§4.3) ----
  abcast::Group group;
  if (!base) group = abcast::generate_group(rng, n_, t_, opt_.key_bits);

  // Zone key: threshold for the replicated service, plain RSA for the base
  // case's unmodified named.
  zone_pub_ = std::make_shared<threshold::ThresholdPublicKey>();
  auto zone_pub = zone_pub_;
  std::vector<threshold::KeyShare> zone_shares(n_);
  std::shared_ptr<crypto::RsaPrivateKey> local_key;
  dns::SignFn initial_signer;
  dns::Zone zone = dns::Zone::from_text(origin, zone_text);
  if (opt_.zone_signed) {
    if (base) {
      local_key = std::make_shared<crypto::RsaPrivateKey>(
          crypto::rsa_generate(rng, opt_.key_bits));
      zone_pub_rsa_ = local_key->pub;
      initial_signer = [key = local_key](util::BytesView data) {
        return crypto::rsa_sign_sha1(*key, data);
      };
    } else {
      threshold::DealtKey dealt;
      if (opt_.key_bits == 512) {
        dealt = threshold::deal_with_primes(rng, n_, t_,
                                            threshold::fixtures::safe_prime_256_a(),
                                            threshold::fixtures::safe_prime_256_b());
      } else if (opt_.key_bits == 1024) {
        dealt = threshold::deal_with_primes(rng, n_, t_,
                                            threshold::fixtures::safe_prime_512_a(),
                                            threshold::fixtures::safe_prime_512_b());
      } else {
        dealt = threshold::deal(rng, n_, t_, opt_.key_bits);
      }
      *zone_pub = dealt.pub;
      zone_shares = dealt.shares;
      zone_pub_rsa_ = dealt.pub.rsa();
      // The initial zone signing (the §4.3 "special command"): the dealer
      // assembles t+1 shares directly; the private exponent never exists.
      initial_signer = [zone_pub, zone_shares,
                        seed = Rng(opt_.seed, kSignerStream).next()](
                           util::BytesView data) mutable {
        Rng srng(seed++);
        const bn::BigInt x = threshold::hash_to_element(*zone_pub, data);
        std::vector<threshold::SignatureShare> shares;
        for (unsigned i = 1; i <= zone_pub->t + 1; ++i) {
          shares.push_back(
              threshold::generate_share(*zone_pub, zone_shares[i - 1], x, false, srng));
        }
        auto y = threshold::assemble(*zone_pub, x, shares);
        if (!y) throw std::logic_error("initial zone signing failed");
        return threshold::signature_bytes(*zone_pub, *y);
      };
    }
    dns::sign_zone(zone, zone_pub_rsa_, /*inception=*/999'000,
                   /*expiration=*/999'000 + 365 * 24 * 3600, initial_signer);
  }

  // ---- replicas ----
  const sim::NodeId client_node = bed_.client;
  const sim::CostModel& cost = opt_.cost_model;
  for (unsigned i = 0; i < n_; ++i) {
    ReplicaConfig config;
    config.n = n_;
    config.t = t_;
    config.sig_protocol = opt_.sig_protocol;
    config.disseminate_reads = opt_.disseminate_reads;
    config.base_case = base;
    config.complaint_timeout = opt_.complaint_timeout;
    if (opt_.require_tsig) {
      config.update_policy.require_tsig = true;
      config.update_policy.keys.push_back(tsig_key_);
    }
    ReplicaNode::Callbacks cb;
    cb.send_replica = [this, i](unsigned to, const Bytes& m) { net_->send(i, to, m); };
    cb.send_client = [this, i](ClientId client, const Bytes& m) {
      net_->send(i, static_cast<sim::NodeId>(client), m);
    };
    cb.now = [this] { return sim_.now(); };
    cb.set_timer = [this, i](double delay, std::function<void()> fn) {
      sim_.schedule(delay, [this, i, fn = std::move(fn)] {
        net_->cpu(i).enqueue(sim_.now(), fn);
      });
    };
    cb.charge_crypto = [this, i, &cost](threshold::CryptoOp op) {
      net_->cpu(i).charge(cost.cost(op));
    };
    cb.charge_message = [this, i, &cost] { net_->cpu(i).charge(cost.message_handle); };
    cb.charge_auth_sign = [this, i, &cost] { net_->cpu(i).charge(cost.auth_sign); };
    cb.charge_auth_verify = [this, i, &cost] { net_->cpu(i).charge(cost.auth_verify); };
    cb.charge_dns_query = [this, i, &cost] { net_->cpu(i).charge(cost.dns_query); };
    cb.charge_dns_update = [this, i, &cost] { net_->cpu(i).charge(cost.dns_update); };
    cb.charge_local_sign = [this, i, &cost] { net_->cpu(i).charge(cost.local_sign); };
    const bool corrupted =
        std::find(opt_.corrupted.begin(), opt_.corrupted.end(), i) != opt_.corrupted.end();
    CorruptionMode mode = corrupted ? opt_.corruption_mode : CorruptionMode::kHonest;
    if (auto it = opt_.corruption_by_replica.find(i);
        it != opt_.corruption_by_replica.end()) {
      mode = it->second;
    }
    // Durable zone store: WAL + signed snapshots in data_dirs[i]. The same
    // verifier the deployed runtime installs — the snapshot's embedded zone
    // must carry the dealt key at its apex and verify in full under it.
    std::unique_ptr<store::DurableZoneStore> dstore;
    if (!base && i < opt_.data_dirs.size() && !opt_.data_dirs[i].empty()) {
      store::DurableZoneStore::Options sopt;
      sopt.dir = opt_.data_dirs[i];
      sopt.snapshot_log_bytes = opt_.snapshot_log_bytes;
      if (opt_.zone_signed) {
        sopt.verify = [dealt = zone_pub_rsa_](store::ZoneState& s) {
          try {
            auto z = std::make_shared<dns::Zone>(dns::Zone::from_wire(s.zone_wire));
            const dns::RRset* keys = z->find(z->origin(), dns::RRType::kKEY);
            if (!keys || keys->rdatas.empty()) return false;
            const crypto::RsaPublicKey pub = dns::zone_key_from_record(
                dns::KeyRdata::decode(keys->rdatas.front()));
            if (!(pub.n == dealt.n) || !(pub.e == dealt.e)) return false;
            if (!dns::verify_zone(*z).ok) return false;
            s.verified_zone = std::move(z);  // spare recovery the re-parse
            return true;
          } catch (const util::ParseError&) {
            return false;
          }
        };
      }
      dstore = std::make_unique<store::DurableZoneStore>(std::move(sopt));
      cb.store = dstore.get();
    }
    replicas_.push_back(std::make_unique<ReplicaNode>(
        config, group.pub, base ? abcast::NodeSecret{} : group.secrets[i], zone_pub,
        zone_shares[i], zone, cb, Rng(opt_.seed, i), mode, local_key));
    if (dstore && dstore->recovered().usable()) {
      // Disk-first boot: install the recovered state before any traffic.
      // The replayed operations' signing shares queue as simulator events
      // and complete once the run starts (each replica replays the same
      // deterministic sessions, so they re-sign cooperatively).
      replicas_.back()->restore_from_store(dstore->recovered());
    }
    stores_.push_back(std::move(dstore));
  }

  // ---- network handlers ----
  for (unsigned i = 0; i < n_; ++i) {
    net_->set_handler(i, [this, i, client_node](sim::NodeId from, Bytes msg) {
      if (from == client_node) {
        replicas_[i]->on_client_request(static_cast<ClientId>(from), msg);
      } else {
        replicas_[i]->on_replica_message(static_cast<unsigned>(from), msg);
      }
    });
  }

  // ---- client ----
  Client::Options copt;
  copt.mode = opt_.client_mode;
  copt.n = n_;
  copt.t = t_;
  copt.first_server = base ? 0 : std::min(opt_.gateway, n_ - 1);
  copt.timeout = opt_.client_timeout;
  if (opt_.zone_signed && opt_.verify_responses) copt.zone_key = zone_pub_rsa_;
  Client::Callbacks ccb;
  ccb.send = [this, client_node](unsigned replica, const Bytes& m) {
    net_->send(client_node, replica, m);
  };
  ccb.now = [this] { return sim_.now(); };
  ccb.set_timer = [this, client_node](double delay, std::function<void()> fn) {
    sim_.schedule(delay, [this, client_node, fn = std::move(fn)] {
      net_->cpu(client_node).enqueue(sim_.now(), fn);
    });
  };
  client_ = std::make_unique<Client>(copt, ccb, Rng(opt_.seed, kClientStream));
  net_->set_handler(client_node, [this](sim::NodeId from, Bytes msg) {
    client_->on_response(static_cast<unsigned>(from), msg);
  });
}

void ReplicatedService::refresh_zone_shares(const std::vector<unsigned>& skip) {
  if (n_ == 1 || !opt_.zone_signed) {
    throw std::logic_error("refresh_zone_shares: needs a threshold-signed zone");
  }
  const bn::BigInt* p = nullptr;
  const bn::BigInt* q = nullptr;
  if (opt_.key_bits == 512) {
    p = &threshold::fixtures::safe_prime_256_a();
    q = &threshold::fixtures::safe_prime_256_b();
  } else if (opt_.key_bits == 1024) {
    p = &threshold::fixtures::safe_prime_512_a();
    q = &threshold::fixtures::safe_prime_512_b();
  } else {
    throw std::logic_error("refresh_zone_shares: dealer primes only known for fixtures");
  }
  Rng rng(opt_.seed, kRefreshStream + refresh_count_);
  ++refresh_count_;
  last_refresh_ = threshold::refresh_shares(rng, *zone_pub_, *p, *q);
  auto pub = std::make_shared<threshold::ThresholdPublicKey>(last_refresh_->pub);
  zone_pub_ = pub;
  for (unsigned i = 0; i < n_; ++i) {
    if (std::find(skip.begin(), skip.end(), i) != skip.end()) continue;
    replicas_[i]->install_zone_share(pub, last_refresh_->shares[i]);
  }
}

void ReplicatedService::install_refreshed_share(unsigned i) {
  if (!last_refresh_) throw std::logic_error("install_refreshed_share: no refresh yet");
  replicas_[i]->install_zone_share(
      std::make_shared<threshold::ThresholdPublicKey>(last_refresh_->pub),
      last_refresh_->shares[i]);
}

void ReplicatedService::drive(const bool& done) {
  while (!done && sim_.step()) {
  }
}

ReplicatedService::OpResult ReplicatedService::run_query_op(const dns::Name& name,
                                                            dns::RRType type) {
  OpResult out;
  bool done = false;
  client_->query(name, type, [&](Client::Result r) {
    out.ok = r.ok;
    out.response = std::move(r.response);
    out.latency = r.latency;
    out.tries = r.tries;
    done = true;
  });
  drive(done);
  return out;
}

ReplicatedService::OpResult ReplicatedService::query(const dns::Name& name,
                                                     dns::RRType type) {
  return run_query_op(name, type);
}

ReplicatedService::OpResult ReplicatedService::run_update_op(dns::Message update) {
  if (opt_.require_tsig) {
    dns::tsig_sign(update, tsig_key_, static_cast<std::uint64_t>(sim_.now() * 1000) + 1);
  }
  OpResult out;
  bool done = false;
  client_->send_update(std::move(update), [&](Client::Result r) {
    out.ok = r.ok;
    out.response = std::move(r.response);
    out.latency = r.latency;
    out.tries = r.tries;
    done = true;
  });
  drive(done);
  return out;
}

ReplicatedService::OpResult ReplicatedService::send_update(dns::Message update) {
  return run_update_op(std::move(update));
}

ReplicatedService::OpResult ReplicatedService::add_record(const dns::Name& name,
                                                          const std::string& address) {
  // nsupdate precedes every change with a read (§5.2); the paper's numbers
  // include it, so ours do too.
  OpResult read = run_query_op(name, dns::RRType::kA);
  dns::Message update;
  update.opcode = dns::Opcode::kUpdate;
  update.questions.push_back({origin_, dns::RRType::kSOA, dns::RRClass::kIN});
  dns::ResourceRecord rr;
  rr.name = name;
  rr.type = dns::RRType::kA;
  rr.ttl = 300;
  rr.rdata = dns::ARdata::from_text(address).encode();
  update.updates().push_back(rr);
  OpResult result = run_update_op(std::move(update));
  result.latency += read.latency;
  result.tries += read.tries - 1;
  return result;
}

ReplicatedService::OpResult ReplicatedService::delete_record(const dns::Name& name) {
  OpResult read = run_query_op(name, dns::RRType::kA);
  dns::Message update;
  update.opcode = dns::Opcode::kUpdate;
  update.questions.push_back({origin_, dns::RRType::kSOA, dns::RRClass::kIN});
  dns::ResourceRecord rr;
  rr.name = name;
  rr.type = dns::RRType::kA;
  rr.klass = dns::RRClass::kANY;  // delete the whole RRset
  rr.ttl = 0;
  update.updates().push_back(rr);
  OpResult result = run_update_op(std::move(update));
  result.latency += read.latency;
  result.tries += read.tries - 1;
  return result;
}

}  // namespace sdns::core
