#include "sim/testbed.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace sdns::sim {

namespace {

// Speeds relative to the Zurich PII-266 (Table 1). The Austin machine is a
// dual PIII-1260 but each protocol thread is single-threaded, so we use the
// per-core ratio; the Sun vs IBM JVM difference is folded into the ratio.
const MachineSpec kZurich{"Zurich", "P II", 266, 1.0};
const MachineSpec kNewYork{"New York", "P II", 300, 1.13};
const MachineSpec kAustin{"Austin", "dual P III", 1260, 4.7};
const MachineSpec kSanJose{"San Jose", "P III", 930, 3.5};

// One-way link latencies in seconds (RTT/2). Keyed by location pair.
double one_way(const std::string& a, const std::string& b) {
  if (a == b) return 0.00015;  // same-site LAN: 0.3 ms RTT
  static const std::map<std::pair<std::string, std::string>, double> kRtt = {
      {{"New York", "Zurich"}, 0.095},
      {{"Austin", "Zurich"}, 0.125},
      {{"San Jose", "Zurich"}, 0.160},
      {{"Austin", "New York"}, 0.055},
      {{"New York", "San Jose"}, 0.075},
      {{"Austin", "San Jose"}, 0.045},
  };
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = kRtt.find(key);
  if (it == kRtt.end()) throw std::logic_error("no latency for " + a + "-" + b);
  return it->second / 2;
}

}  // namespace

const char* to_string(Topology t) {
  switch (t) {
    case Topology::kSingleZurich: return "single-zurich";
    case Topology::kLan4: return "lan-4";
    case Topology::kInternet4: return "internet-4";
    case Topology::kInternet7: return "internet-7";
  }
  return "?";
}

Testbed make_testbed(Topology topology) {
  Testbed bed;
  switch (topology) {
    case Topology::kSingleZurich:
      bed.machines = {kZurich};
      break;
    case Topology::kLan4:
      bed.machines = {kZurich, kZurich, kZurich, kZurich};
      break;
    case Topology::kInternet4:
      bed.machines = {kZurich, kZurich, kNewYork, kSanJose};
      break;
    case Topology::kInternet7:
      bed.machines = {kZurich, kZurich, kZurich, kZurich, kNewYork, kAustin, kSanJose};
      break;
  }
  // The client: a machine on the Zurich LAN (dig/nsupdate host).
  bed.machines.push_back(kZurich);
  bed.client = bed.machines.size() - 1;
  return bed;
}

double one_way_latency(const Testbed& bed, NodeId i, NodeId j) {
  if (i >= bed.machines.size() || j >= bed.machines.size()) return 0;
  if (i == j) return 0;
  return one_way(bed.machines[i].location, bed.machines[j].location);
}

Topology parse_topology(const std::string& name) {
  for (const Topology t : {Topology::kSingleZurich, Topology::kLan4,
                           Topology::kInternet4, Topology::kInternet7}) {
    std::string canon = to_string(t);
    if (name == canon) return t;
    canon.erase(std::remove(canon.begin(), canon.end(), '-'), canon.end());
    if (name == canon) return t;
  }
  throw std::logic_error("unknown topology: " + name);
}

void apply_testbed(const Testbed& bed, Network& net) {
  if (net.size() < bed.machines.size()) {
    throw std::logic_error("network too small for testbed");
  }
  for (NodeId i = 0; i < bed.machines.size(); ++i) {
    net.set_speed(i, bed.machines[i].speed);
    for (NodeId j = 0; j < i; ++j) {
      net.set_latency(i, j, one_way(bed.machines[i].location, bed.machines[j].location));
    }
  }
}

std::string testbed_table1() {
  std::ostringstream os;
  os << "Location  | machines | CPU        | MHz  | speed (vs PII-266)\n"
     << "Zurich    | 4        | P II       | 266  | 1.0\n"
     << "New York  | 1        | P II       | 300  | 1.13\n"
     << "Austin    | 1        | dual P III | 1260 | 4.7\n"
     << "San Jose  | 1        | P III      | 930  | 3.5\n";
  return os.str();
}

std::string testbed_figure1() {
  std::ostringstream os;
  os << "Assumed link RTTs (ms):  Zurich LAN 0.3 | Zurich-NY 95 | Zurich-Austin 125 |\n"
     << "Zurich-SanJose 160 | NY-Austin 55 | NY-SanJose 75 | Austin-SanJose 45\n";
  return os.str();
}

}  // namespace sdns::sim
