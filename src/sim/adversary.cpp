#include "sim/adversary.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace sdns::sim {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDrop: return "link-drop";
    case FaultKind::kLinkDelay: return "link-delay";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kLinkDuplicate: return "link-duplicate";
  }
  return "?";
}

std::string Fault::to_string() const {
  std::ostringstream os;
  os << sdns::sim::to_string(kind) << " ";
  if (kind == FaultKind::kPartition || kind == FaultKind::kCrash) {
    os << "node " << a;
  } else {
    os << "link " << a << "-" << b;
  }
  os << " @" << at << "s for " << duration << "s";
  if (kind == FaultKind::kLinkDrop) os << " (p=" << magnitude << ")";
  if (kind == FaultKind::kLinkDelay) os << " (+" << magnitude << "s)";
  if (kind == FaultKind::kLinkDuplicate) os << " (p=" << magnitude << ")";
  return os.str();
}

double FaultSchedule::horizon() const {
  double h = 0;
  for (const Fault& f : faults) h = std::max(h, f.heals_at());
  return h;
}

std::string FaultSchedule::to_string() const {
  if (faults.empty()) return "  (no faults)\n";
  std::string out;
  for (const Fault& f : faults) {
    out += "  ";
    out += f.to_string();
    out += "\n";
  }
  return out;
}

std::string serialize(const FaultSchedule& schedule) {
  std::string out;
  char line[160];
  for (const Fault& f : schedule.faults) {
    std::snprintf(line, sizeof line, "%s %.17g %.17g %zu %zu %.17g\n",
                  to_string(f.kind), f.at, f.duration, f.a, f.b, f.magnitude);
    out += line;
  }
  return out;
}

FaultSchedule parse_schedule(const std::string& text) {
  FaultSchedule schedule;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    Fault f;
    if (!(fields >> kind >> f.at >> f.duration >> f.a >> f.b >> f.magnitude)) {
      throw std::invalid_argument("bad fault line: " + line);
    }
    bool known = false;
    for (const FaultKind k :
         {FaultKind::kLinkDrop, FaultKind::kLinkDelay, FaultKind::kPartition,
          FaultKind::kCrash, FaultKind::kLinkDuplicate}) {
      if (kind == to_string(k)) {
        f.kind = k;
        known = true;
        break;
      }
    }
    if (!known) throw std::invalid_argument("unknown fault kind: " + kind);
    schedule.faults.push_back(f);
  }
  return schedule;
}

FaultSchedule random_schedule(std::uint64_t seed, const ScheduleOptions& opt) {
  util::Rng rng(seed, /*stream=*/0xFA17'5C8DULL);
  FaultSchedule schedule;
  if (opt.nodes < 2 || opt.max_faults == 0) return schedule;
  const std::size_t count = 1 + rng.below(opt.max_faults);
  const std::size_t iso_bound = std::min(opt.isolation_bound, opt.nodes);
  for (std::size_t i = 0; i < count; ++i) {
    Fault f;
    f.kind = static_cast<FaultKind>(rng.below(opt.duplicates ? 5 : 4));
    if ((f.kind == FaultKind::kPartition || f.kind == FaultKind::kCrash) &&
        iso_bound == 0) {
      f.kind = FaultKind::kLinkDrop;
    }
    f.at = rng.unit() * opt.window;
    f.duration = std::max(0.25, rng.unit() * opt.max_duration);
    switch (f.kind) {
      case FaultKind::kLinkDrop:
      case FaultKind::kLinkDelay:
      case FaultKind::kLinkDuplicate: {
        f.a = rng.below(opt.nodes);
        f.b = rng.below(opt.nodes - 1);
        if (f.b >= f.a) ++f.b;  // distinct endpoints
        f.magnitude = f.kind == FaultKind::kLinkDrop
                          ? std::max(0.1, rng.unit() * opt.max_drop)
                      : f.kind == FaultKind::kLinkDelay
                          ? std::max(0.05, rng.unit() * opt.max_delay)
                          : std::max(0.1, rng.unit() * opt.max_duplicate);
        break;
      }
      case FaultKind::kPartition:
      case FaultKind::kCrash:
        f.a = rng.below(iso_bound);
        break;
    }
    schedule.faults.push_back(f);
  }
  std::stable_sort(schedule.faults.begin(), schedule.faults.end(),
                   [](const Fault& x, const Fault& y) { return x.at < y.at; });
  return schedule;
}

void Adversary::install(FaultSchedule schedule) {
  schedule_ = std::move(schedule);
  base_latency_.assign(net_.size(), std::vector<double>(net_.size(), 0));
  for (NodeId i = 0; i < net_.size(); ++i) {
    for (NodeId j = 0; j < net_.size(); ++j) base_latency_[i][j] = net_.latency(i, j);
  }
  Simulator& sim = net_.sim();
  for (std::size_t i = 0; i < schedule_.faults.size(); ++i) {
    const Fault& f = schedule_.faults[i];
    sim.schedule_at(f.at, [this, i] { transition(i, /*activate=*/true); });
    sim.schedule_at(f.heals_at(), [this, i] { transition(i, /*activate=*/false); });
  }
}

std::set<NodeId> Adversary::ever_crashed() const {
  std::set<NodeId> out;
  for (const Fault& f : schedule_.faults) {
    if (f.kind == FaultKind::kCrash) out.insert(f.a);
  }
  return out;
}

void Adversary::transition(std::size_t index, bool activate) {
  const Fault& f = schedule_.faults[index];
  if (activate) {
    active_.insert(index);
  } else {
    active_.erase(index);
  }
  reapply();
  if (!activate && on_heal &&
      (f.kind == FaultKind::kCrash || f.kind == FaultKind::kPartition)) {
    // Only report the heal once the node is fully reachable again.
    bool still_isolated = net_.is_down(f.a);
    for (NodeId j = 0; j < net_.size() && !still_isolated; ++j) {
      if (j != f.a && net_.is_partitioned(f.a, j)) still_isolated = true;
    }
    if (!still_isolated) on_heal(f.a);
  }
}

void Adversary::reapply() {
  // Recompute the whole fault state from the active set; composition of
  // overlapping faults then needs no per-kind bookkeeping.
  const std::size_t n = net_.size();
  for (NodeId i = 0; i < n; ++i) {
    net_.set_node_down(i, false);
    for (NodeId j = i + 1; j < n; ++j) {
      net_.set_drop_rate(i, j, 0.0);
      net_.set_partitioned(i, j, false);
      net_.set_latency(i, j, base_latency_[i][j]);
    }
  }
  for (std::size_t index : active_) {
    const Fault& f = schedule_.faults[index];
    switch (f.kind) {
      case FaultKind::kLinkDrop:
        net_.set_drop_rate(f.a, f.b, std::max(net_.drop_rate(f.a, f.b), f.magnitude));
        break;
      case FaultKind::kLinkDelay:
        net_.set_latency(f.a, f.b, net_.latency(f.a, f.b) + f.magnitude);
        break;
      case FaultKind::kPartition:
        for (NodeId j = 0; j < n; ++j) {
          if (j != f.a) net_.set_partitioned(f.a, j, true);
        }
        break;
      case FaultKind::kCrash:
        net_.set_node_down(f.a, true);
        break;
      case FaultKind::kLinkDuplicate:
        // Wire-only (see FaultKind): the simulated network delivers each
        // message exactly once, and the protocol layer is already
        // idempotent against duplicates by design.
        break;
    }
  }
}

}  // namespace sdns::sim
