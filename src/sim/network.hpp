// Simulated network and per-node CPU accounting.
//
// Nodes are integers 0..n-1 (node n-1 + beyond may be clients). Each ordered
// pair of nodes has a one-way latency (from the Figure 1 topology) plus
// multiplicative jitter; messages may be dropped or the link partitioned for
// fault injection.
//
// Every node owns a Cpu that serializes its message handling: a message
// arriving at time t is handled at max(t, cpu.busy_until), and the handler
// may charge() additional seconds of (speed-scaled) CPU work — the cost of
// cryptographic operations, modelled after the paper's Table 3.  Messages a
// handler sends depart at the moment the charged work completes, which makes
// compute-bound protocols (the BASIC threshold signature protocol) behave in
// the simulator the way the paper observed on its 266 MHz machines.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace sdns::sim {

using NodeId = std::size_t;

class Network;

/// One node's serial processor.
class Cpu {
 public:
  Cpu(Simulator& sim, double speed) : sim_(sim), speed_(speed) {}

  double speed() const { return speed_; }
  void set_speed(double speed) { speed_ = speed; }
  Time busy_until() const { return busy_until_; }

  /// Charge `ref_seconds` of work measured on the reference machine
  /// (a Zurich PII-266). Only meaningful inside a running handler/job.
  void charge(double ref_seconds) { pending_ += ref_seconds / speed_; }

  /// Current virtual time including work charged so far by the running job.
  Time effective_now() const { return sim_.now() + pending_; }

  /// Run `job` as soon as the CPU is free at or after time `t`.
  void enqueue(Time t, std::function<void()> job);

  /// Execute `job` immediately, accounting its charges (internal helper).
  void run_now(const std::function<void()>& job);

 private:
  Simulator& sim_;
  double speed_;
  Time busy_until_ = 0;
  double pending_ = 0;  ///< work charged by the currently running job
};

class Network {
 public:
  /// `nodes` counts every addressable endpoint (servers and clients).
  Network(Simulator& sim, util::Rng rng, std::size_t nodes, double default_latency);

  Simulator& sim() { return sim_; }
  std::size_t size() const { return cpus_.size(); }

  Cpu& cpu(NodeId node) { return cpus_[node]; }
  void set_speed(NodeId node, double speed);

  /// Symmetric one-way latency between two endpoints (seconds).
  void set_latency(NodeId a, NodeId b, double one_way);
  double latency(NodeId a, NodeId b) const { return latency_[a][b]; }

  /// Multiplicative jitter: each delivery takes latency * (1 + U[0,f]).
  void set_jitter(double fraction) { jitter_ = fraction; }

  /// Fault injection.
  void set_drop_rate(NodeId a, NodeId b, double p);  // both directions
  void set_partitioned(NodeId a, NodeId b, bool blocked);
  void set_node_down(NodeId node, bool down);  // drops all its traffic
  bool is_down(NodeId node) const { return down_[node]; }

  // Fault-state queries, so invariant checkers and failure reports can state
  // which faults were active when something tripped.
  double drop_rate(NodeId a, NodeId b) const { return drop_[a][b]; }
  bool is_partitioned(NodeId a, NodeId b) const { return blocked_[a][b]; }
  bool any_fault_active() const;
  /// Human-readable list of the currently active faults ("none" when clean).
  std::string describe_faults() const;

  using Handler = std::function<void(NodeId from, util::Bytes msg)>;
  void set_handler(NodeId node, Handler handler);

  /// Deliver `msg` to `to`; departs at the sender CPU's effective time and
  /// arrives after link latency (+jitter), then waits for the receiver CPU.
  void send(NodeId from, NodeId to, util::Bytes msg);

  // Statistics.
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }
  void reset_stats();

 private:
  Simulator& sim_;
  util::Rng rng_;
  std::vector<Cpu> cpus_;
  std::vector<std::vector<double>> latency_;
  std::vector<std::vector<double>> drop_;
  std::vector<std::vector<bool>> blocked_;
  std::vector<bool> down_;
  std::vector<Handler> handlers_;
  double jitter_ = 0.05;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace sdns::sim
