#include "sim/simulator.hpp"

#include <stdexcept>

namespace sdns::sim {

void Simulator::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  if (++processed_ > cap_) throw std::runtime_error("simulator event cap exceeded");
  // priority_queue::top returns const&; move out via const_cast is UB — copy
  // the function instead (events are small closures).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

bool Simulator::run_until(Time t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    if (!step()) return false;
  }
  if (now_ < t) now_ = t;
  return !queue_.empty();
}

}  // namespace sdns::sim
