// The paper's experimental setups (Table 1 machines, Figure 1 topology).
//
// Seven server machines — four in Zurich on a 100 Mbit/s LAN, one each in
// New York, Austin, and San Jose — plus a client on the Zurich LAN.  CPU
// speeds are relative to the Zurich PII-266 reference.  The paper's Figure 1
// reports measured round-trip times per link; the figure's numbers are not
// present in the text we reproduce from, so the values below are plausible
// 2004 IBM-intranet RTTs, documented in EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "sim/network.hpp"

namespace sdns::sim {

struct MachineSpec {
  std::string location;
  std::string cpu;
  unsigned mhz;
  double speed;  ///< relative to Zurich PII-266
};

/// Which replica group an experiment row uses (Table 2 first column).
enum class Topology {
  kSingleZurich,   ///< (1,0): one unmodified server
  kLan4,           ///< (4,0)*: four Zurich machines on the LAN
  kInternet4,      ///< (4,k): Zurich x2, New York, San Jose
  kInternet7,      ///< (7,k): Zurich x4, New York, Austin, San Jose
};

const char* to_string(Topology t);

struct Testbed {
  /// Machines hosting replicas, index = NodeId. The client is the last node.
  std::vector<MachineSpec> machines;
  NodeId client = 0;  ///< the dig/nsupdate host (Zurich LAN)

  std::size_t replica_count() const { return machines.size() - 1; }
};

/// Build the machine list for a topology (client appended last).
Testbed make_testbed(Topology topology);

/// Configure latencies and CPU speeds on a Network sized for `bed`.
void apply_testbed(const Testbed& bed, Network& net);

/// One-way latency (seconds) between machines `i` and `j` of the testbed —
/// the Figure 1 link RTTs halved. The wire-level fault injector applies
/// these as constant per-link delays on the real mesh.
double one_way_latency(const Testbed& bed, NodeId i, NodeId j);

/// Parse a topology name as printed by to_string(Topology); accepts the
/// dashless spellings the chaos campaign CLI uses ("lan4", "internet7").
Topology parse_topology(const std::string& name);

/// Table 1 of the paper, for bench banners.
std::string testbed_table1();

/// The Figure 1 link RTTs we assume (milliseconds), for bench banners.
std::string testbed_figure1();

}  // namespace sdns::sim
