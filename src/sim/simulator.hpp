// Deterministic discrete-event simulator.
//
// Replaces the paper's physical testbed (seven machines across the IBM
// intranet).  Virtual time is a double in seconds; events fire in timestamp
// order with FIFO tie-breaking, so a run is a pure function of its inputs
// and the Rng seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sdns::sim {

using Time = double;  ///< virtual seconds

class Simulator {
 public:
  Time now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (>= 0).
  void schedule(Time delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute time `t` (clamped to now).
  void schedule_at(Time t, std::function<void()> fn);

  /// Run the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains (or the safety cap trips).
  void run();

  /// Run events with timestamp <= t; afterwards now() == t if any events ran
  /// past or up to it. Returns false if the queue drained first.
  bool run_until(Time t);

  std::uint64_t events_processed() const { return processed_; }

  /// Abort knob for runaway protocols (default 50M events).
  void set_event_cap(std::uint64_t cap) { cap_ = cap; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t cap_ = 50'000'000;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace sdns::sim
