// Deterministic fault injection on top of the simulated network.
//
// An Adversary owns a FaultSchedule — a list of timed faults (message drops
// and delays per link, network partitions, node crashes) — and replays it
// against a Network by scheduling apply/heal events in the simulator. Because
// the schedule is plain data generated from a single uint64 seed, any run is
// reproducible bit-for-bit and any failing schedule can be minimized by
// deleting faults and re-running.
//
// Fault semantics:
//  - kLinkDrop:  link a<->b drops each message with probability `magnitude`
//                for [at, at+duration).
//  - kLinkDelay: link a<->b latency is raised by `magnitude` seconds.
//  - kPartition: node `a` is cut off from every other node (both ways).
//  - kCrash:     node `a` is down (all its traffic dropped); on heal the
//                `on_heal` hook fires so the owner can run state recovery.
//
// Overlapping faults compose: the adversary recomputes the full network
// fault state from the set of currently active faults on every transition,
// so healing one fault never accidentally heals another.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "sim/network.hpp"

namespace sdns::sim {

enum class FaultKind : std::uint8_t {
  kLinkDrop = 0,
  kLinkDelay = 1,
  kPartition = 2,
  kCrash = 3,
  /// Link a<->b duplicates each message with probability `magnitude`.
  /// Wire-only: the simulated network delivers each message exactly once,
  /// so the sim Adversary ignores it; the net::FaultInjector enforces it.
  kLinkDuplicate = 4,
};

const char* to_string(FaultKind k);

struct Fault {
  FaultKind kind = FaultKind::kLinkDrop;
  double at = 0;        ///< activation time (virtual seconds)
  double duration = 0;  ///< active for [at, at + duration)
  NodeId a = 0;         ///< target node (kPartition/kCrash) or link endpoint
  NodeId b = 0;         ///< second link endpoint (link faults only)
  double magnitude = 0; ///< drop probability or extra one-way delay (seconds)

  double heals_at() const { return at + duration; }
  std::string to_string() const;
};

struct FaultSchedule {
  std::vector<Fault> faults;

  /// Latest heal time over all faults (0 for an empty schedule).
  double horizon() const;
  /// One fault per line, human-readable — the replay contract's evidence.
  std::string to_string() const;
};

/// Machine round-trip form: one fault per line,
/// `kind at duration a b magnitude`, doubles at full precision. This is
/// what `sdnsd --fault-schedule` and the forked wire-chaos harness load.
std::string serialize(const FaultSchedule& schedule);
/// Inverse of serialize(); throws std::invalid_argument on malformed input.
FaultSchedule parse_schedule(const std::string& text);

/// Options for random_schedule().
struct ScheduleOptions {
  std::size_t nodes = 4;       ///< fault targets are nodes [0, nodes)
  std::size_t max_faults = 6;  ///< actual count is drawn in [1, max_faults]
  double window = 30.0;        ///< activations are drawn in [0, window)
  double max_duration = 8.0;   ///< durations in (0, max_duration]
  double max_drop = 1.0;       ///< link drop probabilities in (0, max_drop]
  double max_delay = 2.0;      ///< extra link delays in (0, max_delay]
  /// Crash/partition faults are restricted to nodes below this bound so a
  /// harness can exempt e.g. the client (default: no restriction).
  std::size_t isolation_bound = SIZE_MAX;
  /// Draw kLinkDuplicate faults too (wire schedules). Off by default so
  /// every existing sim seed keeps producing the same schedule.
  bool duplicates = false;
  double max_duplicate = 0.5;  ///< duplication probabilities in (0, this]
};

/// Generate a randomized schedule; a pure function of (seed, options).
FaultSchedule random_schedule(std::uint64_t seed, const ScheduleOptions& opt);

class Adversary {
 public:
  explicit Adversary(Network& net) : net_(net) {}

  /// Fires when a crashed or partitioned node has every such fault healed;
  /// the owner typically triggers state recovery for it.
  std::function<void(NodeId)> on_heal;

  /// Schedule every fault's apply/heal transition in the simulator. Must be
  /// called once, before the run starts.
  void install(FaultSchedule schedule);

  const FaultSchedule& schedule() const { return schedule_; }
  bool all_healed() const { return active_.empty(); }
  /// Nodes that were crashed at any point during the schedule.
  std::set<NodeId> ever_crashed() const;

 private:
  void transition(std::size_t index, bool activate);
  void reapply();

  Network& net_;
  FaultSchedule schedule_;
  std::set<std::size_t> active_;  ///< indices into schedule_.faults
  std::vector<std::vector<double>> base_latency_;
};

}  // namespace sdns::sim
