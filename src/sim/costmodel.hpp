// CPU cost model for cryptographic and DNS operations.
//
// The paper measured 1024-bit threshold RSA implemented with Java BigInteger
// on a 266 MHz Pentium II; our C++ runs the same algorithms orders of
// magnitude faster.  To reproduce the paper's *latencies* we therefore run
// the real protocols but charge virtual CPU seconds from this table,
// calibrated against Table 3 of the paper:
//
//     generate share (value + proof)  0.82 s
//     verify share (proof check)      0.78 s
//     assemble signature              0.05 s
//     verify final signature          0.003 s
//
// The share *value* alone costs one |2*Delta*s_i|-bit exponentiation; the
// proof costs roughly two more exponentiations with slightly longer
// exponents — hence the 0.25 / 0.57 split below (their sum is the measured
// 0.82).  Costs for a machine of speed f are the table value divided by f
// (speeds are relative to the Zurich PII-266, Table 1).
#pragma once

#include "threshold/protocol.hpp"

namespace sdns::sim {

struct CostModel {
  // Threshold signature operations (reference machine seconds).
  double share_value = 0.25;   ///< x^{2*Delta*s_i}
  double proof_gen = 0.57;     ///< correctness proof generation
  double proof_verify = 0.78;  ///< correctness proof verification
  double assemble = 0.05;      ///< Lagrange combination of t+1 shares
  double final_verify = 0.003; ///< y^e == x (small exponent)

  // Broadcast-layer operations. SINTRA's per-message work (serialization,
  // MAC-based authenticators) on the reference machine.
  double message_handle = 0.0015;  ///< fixed cost to process one message
  double auth_sign = 0.0020;       ///< authenticate an outgoing certificate vote
  double auth_verify = 0.0015;     ///< check one authenticator

  // named (BIND) costs. The base case (1,0) row of Table 2 shows an add at
  // 0.047 s and a delete at 0.022 s — consistent with named's C RSA signer
  // costing ~10 ms per 1024-bit signature on the PII-266 (4 vs 2 SIGs) plus
  // a small query/update engine cost.
  double dns_query = 0.003;
  double dns_update = 0.002;  ///< zone mutation excluding signatures
  double local_sign = 0.010;  ///< unmodified named signing with a local key

  double cost(threshold::CryptoOp op) const {
    switch (op) {
      case threshold::CryptoOp::kShareValue: return share_value;
      case threshold::CryptoOp::kProofGen: return proof_gen;
      case threshold::CryptoOp::kProofVerify: return proof_verify;
      case threshold::CryptoOp::kAssemble: return assemble;
      case threshold::CryptoOp::kFinalVerify: return final_verify;
    }
    return 0;
  }
};

}  // namespace sdns::sim
