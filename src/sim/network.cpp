#include "sim/network.hpp"

#include <stdexcept>

namespace sdns::sim {

namespace {
// Runs `job` now if the CPU is idle, otherwise re-schedules at busy_until.
// FIFO tie-breaking in the simulator keeps deferred jobs in arrival order.
void run_or_defer(Simulator& sim, Cpu& cpu, const std::function<void()>& job);
}  // namespace

void Cpu::enqueue(Time t, std::function<void()> job) {
  sim_.schedule_at(std::max(t, busy_until_),
                   [this, job = std::move(job)] { run_or_defer(sim_, *this, job); });
}

void Cpu::run_now(const std::function<void()>& job) {
  pending_ = 0;
  job();
  busy_until_ = sim_.now() + pending_;
  pending_ = 0;
}

namespace {
void run_or_defer(Simulator& sim, Cpu& cpu, const std::function<void()>& job) {
  if (cpu.busy_until() > sim.now()) {
    sim.schedule_at(cpu.busy_until(), [&sim, &cpu, job] { run_or_defer(sim, cpu, job); });
    return;
  }
  cpu.run_now(job);
}
}  // namespace

Network::Network(Simulator& sim, util::Rng rng, std::size_t nodes, double default_latency)
    : sim_(sim), rng_(rng) {
  cpus_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) cpus_.emplace_back(sim, 1.0);
  latency_.assign(nodes, std::vector<double>(nodes, default_latency));
  drop_.assign(nodes, std::vector<double>(nodes, 0.0));
  blocked_.assign(nodes, std::vector<bool>(nodes, false));
  down_.assign(nodes, false);
  handlers_.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) latency_[i][i] = 0.0;
}

void Network::set_speed(NodeId node, double speed) {
  if (speed <= 0) throw std::domain_error("speed must be positive");
  cpus_[node].set_speed(speed);
}

void Network::set_latency(NodeId a, NodeId b, double one_way) {
  latency_[a][b] = one_way;
  latency_[b][a] = one_way;
}

void Network::set_drop_rate(NodeId a, NodeId b, double p) {
  drop_[a][b] = p;
  drop_[b][a] = p;
}

void Network::set_partitioned(NodeId a, NodeId b, bool blocked) {
  blocked_[a][b] = blocked;
  blocked_[b][a] = blocked;
}

void Network::set_node_down(NodeId node, bool down) { down_[node] = down; }

void Network::set_handler(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void Network::send(NodeId from, NodeId to, util::Bytes msg) {
  ++messages_sent_;
  bytes_sent_ += msg.size();
  if (down_[from] || down_[to] || blocked_[from][to] ||
      (drop_[from][to] > 0 && rng_.chance(drop_[from][to]))) {
    ++messages_dropped_;
    return;
  }
  const Time departure = cpus_[from].effective_now();
  const double base = latency_[from][to];
  const double delay = base * (1.0 + (jitter_ > 0 ? rng_.unit() * jitter_ : 0.0));
  const Time arrival = departure + delay;
  sim_.schedule_at(arrival, [this, from, to, msg = std::move(msg)]() mutable {
    cpus_[to].enqueue(sim_.now(), [this, from, to, msg = std::move(msg)]() mutable {
      if (handlers_[to]) handlers_[to](from, std::move(msg));
    });
  });
}

bool Network::any_fault_active() const {
  for (std::size_t i = 0; i < size(); ++i) {
    if (down_[i]) return true;
    for (std::size_t j = i + 1; j < size(); ++j) {
      if (blocked_[i][j] || drop_[i][j] > 0) return true;
    }
  }
  return false;
}

std::string Network::describe_faults() const {
  std::string out;
  auto append = [&out](const std::string& item) {
    if (!out.empty()) out += "; ";
    out += item;
  };
  for (std::size_t i = 0; i < size(); ++i) {
    if (down_[i]) append("node " + std::to_string(i) + " down");
  }
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t j = i + 1; j < size(); ++j) {
      if (blocked_[i][j]) {
        append("link " + std::to_string(i) + "-" + std::to_string(j) + " partitioned");
      }
      if (drop_[i][j] > 0) {
        append("link " + std::to_string(i) + "-" + std::to_string(j) + " drop " +
               std::to_string(drop_[i][j]));
      }
    }
  }
  return out.empty() ? "none" : out;
}

void Network::reset_stats() {
  messages_sent_ = 0;
  bytes_sent_ = 0;
  messages_dropped_ = 0;
}

}  // namespace sdns::sim
