#include "store/durable.hpp"

#include <fcntl.h>
#include <time.h>

#include <cstdlib>
#include <cstring>

#include "util/fileio.hpp"
#include "util/log.hpp"

namespace sdns::store {

using util::Bytes;
using util::BytesView;

namespace {
constexpr char kSnapMagic[8] = {'S', 'D', 'N', 'S', 'S', 'N', 'A', 'P'};
// Snapshot versions share one field layout (cursor counters + lp32 zone
// wire + fnv1a trailer); the version byte records which zone wire encoding
// the writer used. v1 carried the legacy zone format, v2 carries SDNSZONE2
// (chunked, parallel-parsable — see dns/zone.cpp). Readers accept both
// forever: Zone::from_wire auto-detects the payload, so a snapshot written
// by a pre-SDNSZONE2 build still restores after an upgrade.
constexpr std::uint8_t kSnapVersion = 2;
constexpr std::uint8_t kSnapVersionMin = 1;

std::uint64_t fnv1a(BytesView data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t now_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
}
}  // namespace

template <typename Fn>
void DurableZoneStore::guarded(const char* what, Fn&& fn) {
  try {
    fn();
  } catch (const util::IoError& e) {
    if (!opt_.fatal_io_errors) throw;
    // No retry, no degraded mode: after a failed fsync the kernel may have
    // dropped the very pages we acknowledged. Crash and recover from the
    // intact prefix instead of serving un-durable acknowledgements.
    SDNS_LOG_ERROR("store ", opt_.dir, ": fatal I/O failure during ", what, ": ",
                   e.what());
    std::abort();
  }
}

DurableZoneStore::DurableZoneStore(Options options) : opt_(std::move(options)) {
  obs::Registry* m = opt_.metrics;
  c_snapshots_ = m ? &m->counter("store.snapshots") : &obs::noop_counter();
  c_snapshot_bytes_ =
      m ? &m->counter("store.snapshot_bytes") : &obs::noop_counter();
  c_snapshot_rejects_ =
      m ? &m->counter("store.snapshot_rejects") : &obs::noop_counter();
  c_replayed_ = m ? &m->counter("store.wal_replayed") : &obs::noop_counter();
  c_torn_bytes_ = m ? &m->counter("store.wal_torn_bytes") : &obs::noop_counter();
  h_fsync_us_ = m ? &m->histogram("store.fsync_us") : &obs::noop_histogram();
  // Pre-create the names a scrape-based test asserts on, so they exist at 0.
  if (m) {
    m->counter("store.wal_appends");
    m->counter("store.recoveries_from_disk");
  }

  util::ensure_dir(opt_.dir);

  // ---- recovery ladder, disk half: snapshot, then the contiguous tail ----
  const std::string snap_path = opt_.dir + "/snapshot.bin";
  Bytes raw;
  try {
    raw = util::read_entire_file(snap_path);
  } catch (const util::IoError&) {
    // No snapshot yet — a fresh directory, or log-only history.
  }
  if (!raw.empty()) {
    bool ok = false;
    ZoneState snap;
    try {
      if (raw.size() < sizeof kSnapMagic + 1 + 8 ||
          std::memcmp(raw.data(), kSnapMagic, sizeof kSnapMagic) != 0) {
        throw util::ParseError("bad snapshot magic");
      }
      const BytesView body(raw.data(), raw.size() - 8);
      util::Reader sum_r(BytesView(raw).subspan(raw.size() - 8));
      if (fnv1a(body) != sum_r.u64()) throw util::ParseError("snapshot checksum");
      util::Reader r(body.subspan(sizeof kSnapMagic));
      const std::uint8_t version = r.u8();
      if (version < kSnapVersionMin || version > kSnapVersion) {
        throw util::ParseError("snapshot version");
      }
      snap.abcast_cursor = r.u64();
      snap.deliveries = r.u64();
      snap.update_counter = r.u64();
      snap.zone_generation = r.u64();
      snap.zone_wire = r.lp32();
      r.expect_done();
      ok = true;
    } catch (const util::ParseError& e) {
      SDNS_LOG_WARN("store ", opt_.dir, ": discarding corrupt snapshot: ",
                    e.what());
      c_snapshot_rejects_->inc();
    }
    if (ok && opt_.verify && !opt_.verify(snap)) {
      // Checksum-intact but the zone inside does not verify under the zone
      // key: disk tampering or bitrot past the checksum. Never trust it.
      SDNS_LOG_WARN("store ", opt_.dir,
                    ": snapshot failed zone-signature verification, rejecting");
      c_snapshot_rejects_->inc();
      ok = false;
    }
    if (ok) recovered_.snapshot = std::move(snap);
  }

  wal_ = std::make_unique<Wal>(opt_.dir + "/wal.log", opt_.metrics);
  c_torn_bytes_->inc(wal_->torn_bytes());

  // The tail must start exactly at the replay base and stay contiguous; a
  // gap means the records beyond it belong to a different history (e.g. a
  // crash lost the middle) and cannot be replayed.
  const std::uint64_t base =
      recovered_.snapshot ? recovered_.snapshot->abcast_cursor : 0;
  std::uint64_t expect = base;
  std::size_t skipped = 0;
  for (WalRecord& rec : wal_->take_records()) {
    if (rec.seq < base) {
      // Pre-snapshot leftovers: a crash between snapshot rename and WAL
      // reset leaves them behind; the snapshot already contains their effect.
      ++skipped;
      continue;
    }
    if (rec.seq != expect) {
      SDNS_LOG_WARN("store ", opt_.dir, ": WAL gap at seq ", rec.seq,
                    " (expected ", expect, "), dropping the rest of the tail");
      break;
    }
    ++expect;
    recovered_.tail.push_back(std::move(rec));
  }
  c_replayed_->inc(recovered_.tail.size());
  if (recovered_.usable()) {
    SDNS_LOG_INFO("store ", opt_.dir, ": recovered snapshot@",
                  recovered_.snapshot ? recovered_.snapshot->abcast_cursor : 0,
                  " + ", recovered_.tail.size(), " WAL records (", skipped,
                  " pre-snapshot skipped)");
  }
}

void DurableZoneStore::append(std::uint64_t seq, BytesView payload, bool mark) {
  guarded("wal append", [&] {
    WalRecord rec;
    rec.seq = seq;
    rec.mark = mark;
    rec.payload.assign(payload.begin(), payload.end());
    wal_->append(rec);
  });
}

void DurableZoneStore::sync() {
  guarded("wal sync", [&] {
    const std::uint64_t t0 = now_us();
    if (wal_->sync()) h_fsync_us_->observe(now_us() - t0);
  });
}

void DurableZoneStore::maybe_snapshot(const std::function<ZoneState()>& state) {
  if (opt_.snapshot_log_bytes == 0) return;
  if (wal_->bytes() < opt_.snapshot_log_bytes) return;
  checkpoint(state);
}

void DurableZoneStore::checkpoint(const std::function<ZoneState()>& state) {
  guarded("snapshot", [&] { write_snapshot(state()); });
}

void DurableZoneStore::write_snapshot(const ZoneState& state) {
  util::Writer w(state.zone_wire.size() + 64);
  w.raw(kSnapMagic, sizeof kSnapMagic);
  w.u8(kSnapVersion);
  w.u64(state.abcast_cursor);
  w.u64(state.deliveries);
  w.u64(state.update_counter);
  w.u64(state.zone_generation);
  w.lp32(state.zone_wire);
  const std::uint64_t sum = fnv1a(w.bytes());
  w.u64(sum);
  const Bytes blob = std::move(w).take();

  const std::string tmp = opt_.dir + "/snapshot.tmp";
  const std::string dst = opt_.dir + "/snapshot.bin";
  const int fd = util::retry_open(tmp, O_WRONLY | O_CREAT | O_TRUNC);
  try {
    util::write_all(fd, blob);
    const std::uint64_t t0 = now_us();
    util::fsync_fd(fd);
    h_fsync_us_->observe(now_us() - t0);
  } catch (...) {
    util::close_fd(fd);
    throw;
  }
  util::close_fd(fd);
  // rename + directory fsync: the snapshot becomes visible atomically and
  // durably. Only then is it safe to drop the log the snapshot supersedes.
  util::rename_file(tmp, dst);
  util::fsync_dir(opt_.dir);
  wal_->reset();
  ++snapshots_written_;
  c_snapshots_->inc();
  c_snapshot_bytes_->inc(blob.size());
  SDNS_LOG_INFO("store ", opt_.dir, ": snapshot@", state.abcast_cursor, " (",
                blob.size(), " bytes), log compacted");
}

}  // namespace sdns::store
