// Write-ahead log file: length-prefixed, checksummed, torn-tail tolerant.
//
// Layout:
//   8-byte magic "SDNSWAL1"
//   records:  u32 body_len | u64 fnv1a(body) | body
//   body:     u64 seq | u8 kind (0 payload, 1 mark) | payload bytes
//
// All integers big-endian (util::Writer convention). The opening scan stops
// at the first record whose header is short, whose body is short, or whose
// checksum mismatches — that is exactly what a crash mid-append leaves
// behind — and truncates the file back to the intact prefix so subsequent
// appends extend valid data, never garbage. A corrupt *magic* means the
// file is unusable as history; it is reset to an empty log (the caller's
// recovery then proceeds without a tail).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "store/store.hpp"

namespace sdns::store {

class Wal {
 public:
  /// Open (creating if absent), scan, and truncate any torn tail. The
  /// records that survived the scan are available via take_records().
  /// Throws util::IoError on unrecoverable I/O failure.
  explicit Wal(std::string path, obs::Registry* metrics = nullptr);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// The intact records found by the opening scan (destructive read).
  std::vector<WalRecord> take_records() { return std::move(recovered_); }

  /// Bytes of torn/corrupt tail the opening scan truncated (0 = clean).
  std::uint64_t torn_bytes() const { return torn_bytes_; }

  /// Append one record (buffered in the kernel; not yet durable).
  void append(const WalRecord& rec);

  /// fdatasync if anything was appended since the last sync. Returns true
  /// when an fsync actually happened (for latency accounting).
  bool sync();

  /// Truncate back to an empty log (post-snapshot compaction) and fsync.
  void reset();

  /// Current log size in bytes (header included).
  std::uint64_t bytes() const { return bytes_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  std::uint64_t torn_bytes_ = 0;
  bool dirty_ = false;
  std::vector<WalRecord> recovered_;

  obs::Counter* c_appends_;
  obs::Counter* c_append_bytes_;
  obs::Counter* c_syncs_;
};

}  // namespace sdns::store
