// DurableZoneStore — WAL + signed snapshots + disk-first recovery in one
// data directory:
//
//   <dir>/wal.log        the write-ahead log (store/wal.hpp format)
//   <dir>/snapshot.bin   newest snapshot (written to snapshot.tmp, renamed)
//
// Snapshot file layout (big-endian, util::Writer):
//   8-byte magic "SDNSSNAP" | u8 version
//   u64 abcast_cursor | u64 deliveries | u64 update_counter
//   u64 zone_generation | lp32 zone_wire | u64 fnv1a(everything above)
//
// version=1 snapshots carry the legacy zone wire encoding, version=2 the
// chunked SDNSZONE2 encoding (dns/zone.cpp) that restores in parallel. New
// snapshots are written as v2; v1 files stay readable forever because
// Zone::from_wire auto-detects the payload format.
//
// The zone_wire carries the installed threshold SIG records, so a snapshot
// is self-certifying: recovery re-verifies the whole zone against the zone
// key (Options::verify) before trusting it — a corrupted or attacker-
// planted snapshot fails verification and the replica falls back to the
// network state transfer, exactly as if the disk were empty.
//
// Atomicity: snapshots are written to a temp file, fsynced, renamed over
// snapshot.bin, and the directory is fsynced — a crash leaves either the
// old snapshot or the new one, never a torn hybrid. The WAL is truncated
// only after the rename is durable; a crash between the two leaves stale
// pre-snapshot records that recovery skips by sequence number.
#pragma once

#include <memory>
#include <string>

#include "store/wal.hpp"

namespace sdns::store {

class DurableZoneStore final : public ZoneStoreIf {
 public:
  struct Options {
    std::string dir;  ///< created if missing
    /// Snapshot when the WAL exceeds this many bytes (checked at
    /// maybe_snapshot, i.e. when the replica is idle). 0 disables
    /// size-triggered snapshots (checkpoint() still works).
    std::uint64_t snapshot_log_bytes = 4ull << 20;
    /// Snapshot admission: a checksum-valid snapshot is handed here before
    /// being trusted; return false to reject it (counted, and recovery
    /// proceeds as if no snapshot existed). The deployment verifies the
    /// threshold signatures over the embedded zone. The state is mutable so
    /// the verifier can stash the zone it parsed in ZoneState::verified_zone
    /// for recovery to reuse. Null accepts all.
    std::function<bool(ZoneState&)> verify;
    /// An fsync/write failure aborts the process (default): a store that
    /// cannot make acknowledged updates durable must not keep serving.
    /// Tests set false to get util::IoError instead.
    bool fatal_io_errors = true;
    obs::Registry* metrics = nullptr;
  };

  /// Opens the directory and runs the disk half of the recovery ladder;
  /// recovered() holds the result. Throws util::IoError when the directory
  /// cannot be opened at all.
  explicit DurableZoneStore(Options options);

  /// What the opening scan found (snapshot + replayable tail).
  const RecoveredState& recovered() const { return recovered_; }

  // ZoneStoreIf
  void append(std::uint64_t seq, util::BytesView payload, bool mark) override;
  void sync() override;
  void maybe_snapshot(const std::function<ZoneState()>& state) override;
  void checkpoint(const std::function<ZoneState()>& state) override;

  std::uint64_t wal_bytes() const { return wal_->bytes(); }
  std::uint64_t snapshots_written() const { return snapshots_written_; }

 private:
  void write_snapshot(const ZoneState& state);
  template <typename Fn>
  void guarded(const char* what, Fn&& fn);

  Options opt_;
  std::unique_ptr<Wal> wal_;
  RecoveredState recovered_;
  std::uint64_t snapshots_written_ = 0;

  obs::Counter* c_snapshots_;
  obs::Counter* c_snapshot_bytes_;
  obs::Counter* c_snapshot_rejects_;
  obs::Counter* c_replayed_;
  obs::Counter* c_torn_bytes_;
  obs::Histogram* h_fsync_us_;
};

}  // namespace sdns::store
