// Durable zone store — the narrow interface the replicated state machine
// persists through (ROADMAP item 1; shaped like nsblast's ResourceIf: the
// system codes against the interface, backends are swappable).
//
// The contract mirrors classic write-ahead logging, keyed by the atomic
// broadcast sequence:
//
//   deliver(seq, payload)  ->  append(seq, payload)        [buffered]
//   ...                        append(seq+1, payload')     [buffered]
//   first zone mutation    ->  sync()                      [ONE fsync]
//   apply mutations
//   pipeline drained       ->  maybe_snapshot(state_fn)    [compaction]
//
// sync() is group commit: one fsync covers every record appended since the
// last call — in particular a whole PR-6 update batch, and any payloads
// that queued behind an in-flight signing session. Non-mutating deliveries
// (disseminated reads) are appended as tiny cursor "marks" so the on-disk
// sequence stays contiguous; marks never force an fsync of their own.
//
// Recovery hands back a RecoveredState: the newest *verified* snapshot (the
// zone is threshold-signed, so a snapshot carrying the installed signatures
// is self-certifying — DurableZoneStore::Options::verify enforces it) plus
// the contiguous WAL tail from the snapshot's cursor. The replica replays
// the tail through its normal execution path and only falls back to network
// state transfer when the disk is behind the cluster.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "util/bytes.hpp"

namespace sdns::store {

/// A consistent cut of one replica's replicated state, as persisted in a
/// snapshot: the zone in wire form plus every counter needed to resume the
/// state machine exactly where the snapshot was taken.
struct ZoneState {
  std::uint64_t abcast_cursor = 0;    ///< next abcast sequence to deliver
  std::uint64_t deliveries = 0;       ///< payloads executed so far
  std::uint64_t update_counter = 0;   ///< deterministic-inception counter
  std::uint64_t zone_generation = 1;  ///< packet-cache invalidation stamp
  util::Bytes zone_wire;              ///< dns::Zone::to_wire (signed zone)
  /// Verifier stash, opaque to the store layer: the snapshot verifier had
  /// to parse zone_wire anyway, so it may park the result here (as a
  /// std::shared_ptr<dns::Zone>) and recovery installs it without paying a
  /// second full parse — at 1M RRsets that second parse dominates restart.
  std::any verified_zone;
};

/// One recovered WAL record. `mark` records carry no payload: they advance
/// the cursor past a non-mutating delivery without re-executing it.
struct WalRecord {
  std::uint64_t seq = 0;
  bool mark = false;
  util::Bytes payload;
};

/// What the opening scan of a data directory produced.
struct RecoveredState {
  std::optional<ZoneState> snapshot;  ///< newest verified snapshot, if any
  /// Contiguous WAL records starting exactly at the snapshot's cursor (or
  /// at sequence 0 when there is no snapshot). Empty otherwise — a gapped
  /// tail cannot be replayed and is discarded.
  std::vector<WalRecord> tail;

  bool usable() const { return snapshot.has_value() || !tail.empty(); }
};

/// The storage seam. Exactly one implementation runs under a replica; the
/// in-memory one is the default so every existing test and simulation is
/// byte-for-byte unchanged.
class ZoneStoreIf {
 public:
  virtual ~ZoneStoreIf() = default;

  /// Buffer one delivered payload (or cursor mark) at `seq`. Sequences are
  /// appended strictly in order; durability is deferred to sync().
  virtual void append(std::uint64_t seq, util::BytesView payload, bool mark) = 0;

  /// Make every append so far durable (one fsync, skipped when clean).
  /// Called before the first zone mutation that depends on the appended
  /// records — the write-ahead invariant.
  virtual void sync() = 0;

  /// Compaction point: the replica is idle (nothing executing, queue
  /// drained), so `state` can produce a consistent cut. The store invokes
  /// it only if its log-bytes threshold says a snapshot is due.
  virtual void maybe_snapshot(const std::function<ZoneState()>& state) = 0;

  /// Unconditional snapshot + log truncation. Used when the replica adopts
  /// a network snapshot during recovery: the WAL's history no longer leads
  /// to the new state, so the disk must be re-anchored atomically. Lazy
  /// like maybe_snapshot — the in-memory backend never serializes the zone.
  virtual void checkpoint(const std::function<ZoneState()>& state) = 0;
};

/// The default backend: forgets everything. Keeping the no-op behind the
/// same interface means the replica's commit hook is always exercised.
class MemoryZoneStore final : public ZoneStoreIf {
 public:
  void append(std::uint64_t, util::BytesView, bool) override {}
  void sync() override {}
  void maybe_snapshot(const std::function<ZoneState()>&) override {}
  void checkpoint(const std::function<ZoneState()>&) override {}
};

}  // namespace sdns::store
