#include "store/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "util/fileio.hpp"
#include "util/log.hpp"

namespace sdns::store {

using util::Bytes;
using util::BytesView;

namespace {
constexpr char kMagic[8] = {'S', 'D', 'N', 'S', 'W', 'A', 'L', '1'};
constexpr std::size_t kRecordHeader = 4 + 8;  // u32 len + u64 checksum
/// Body-size sanity bound: an abcast payload is at most a few update
/// messages; anything past this is corruption, not data.
constexpr std::uint32_t kMaxBody = 1u << 26;

std::uint64_t fnv1a(BytesView data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

Wal::Wal(std::string path, obs::Registry* metrics) : path_(std::move(path)) {
  c_appends_ = metrics ? &metrics->counter("store.wal_appends") : &obs::noop_counter();
  c_append_bytes_ =
      metrics ? &metrics->counter("store.wal_append_bytes") : &obs::noop_counter();
  c_syncs_ = metrics ? &metrics->counter("store.wal_syncs") : &obs::noop_counter();

  fd_ = util::retry_open(path_, O_RDWR | O_CREAT);
  const Bytes raw = util::read_entire_file(path_);

  if (raw.empty()) {
    util::write_all(fd_, kMagic, sizeof kMagic);
    util::fsync_fd(fd_);
    bytes_ = sizeof kMagic;
    return;
  }
  if (raw.size() < sizeof kMagic ||
      std::memcmp(raw.data(), kMagic, sizeof kMagic) != 0) {
    // Not our log: unusable as history. Reset rather than append after
    // garbage — the recovery ladder falls back to network transfer.
    SDNS_LOG_WARN("wal ", path_, ": bad magic, resetting (", raw.size(),
                  " bytes discarded)");
    torn_bytes_ = raw.size();
    util::truncate_fd(fd_, 0);
    util::write_all(fd_, kMagic, sizeof kMagic);
    util::fsync_fd(fd_);
    bytes_ = sizeof kMagic;
    return;
  }

  // Scan records; stop at the first torn or corrupt one.
  std::size_t pos = sizeof kMagic;
  while (pos + kRecordHeader <= raw.size()) {
    util::Reader hdr(BytesView(raw).subspan(pos, kRecordHeader));
    const std::uint32_t len = hdr.u32();
    const std::uint64_t sum = hdr.u64();
    if (len < 9 || len > kMaxBody) break;
    if (pos + kRecordHeader + len > raw.size()) break;  // torn body
    const BytesView body = BytesView(raw).subspan(pos + kRecordHeader, len);
    if (fnv1a(body) != sum) break;
    try {
      util::Reader r(body);
      WalRecord rec;
      rec.seq = r.u64();
      rec.mark = r.u8() != 0;
      rec.payload = r.raw_copy(r.remaining());
      recovered_.push_back(std::move(rec));
    } catch (const util::ParseError&) {
      break;
    }
    pos += kRecordHeader + len;
  }
  torn_bytes_ = raw.size() - pos;
  if (torn_bytes_ > 0) {
    SDNS_LOG_WARN("wal ", path_, ": truncating ", torn_bytes_,
                  " torn tail bytes after ", recovered_.size(), " intact records");
    util::truncate_fd(fd_, pos);
    util::fsync_fd(fd_);
  }
  bytes_ = pos;
  // Position the fd at the end for appends (O_APPEND is avoided so
  // truncate + write interleave predictably).
  if (::lseek(fd_, static_cast<off_t>(pos), SEEK_SET) < 0) {
    throw util::IoError("lseek " + path_);
  }
}

Wal::~Wal() { util::close_fd(fd_); }

void Wal::append(const WalRecord& rec) {
  util::Writer body;
  body.u64(rec.seq);
  body.u8(rec.mark ? 1 : 0);
  body.raw(rec.payload);
  const Bytes b = std::move(body).take();
  util::Writer frame(kRecordHeader + b.size());
  frame.u32(static_cast<std::uint32_t>(b.size()));
  frame.u64(fnv1a(b));
  frame.raw(b);
  const Bytes f = std::move(frame).take();
  util::write_all(fd_, f);
  bytes_ += f.size();
  dirty_ = true;
  c_appends_->inc();
  c_append_bytes_->inc(f.size());
}

bool Wal::sync() {
  if (!dirty_) return false;
  util::fdatasync_fd(fd_);
  dirty_ = false;
  c_syncs_->inc();
  return true;
}

void Wal::reset() {
  util::truncate_fd(fd_, sizeof kMagic);
  if (::lseek(fd_, static_cast<off_t>(sizeof kMagic), SEEK_SET) < 0) {
    throw util::IoError("lseek " + path_);
  }
  util::fsync_fd(fd_);
  bytes_ = sizeof kMagic;
  dirty_ = false;
}

}  // namespace sdns::store
