// Optimistic asynchronous atomic broadcast.
//
// This is our SINTRA stand-in, modelled on the Kursawe-Shoup protocol the
// paper uses (§3.3): a *fast optimistic mode* in which the epoch's leader
// assigns sequence numbers, and a *fall-back mode* entered when the leader
// is apparently misbehaving, gated by randomized binary Byzantine agreement
// (bba.hpp) so the abandonment decision itself needs no timing assumptions.
//
// Optimistic path, per sequence number s in epoch e (leader = e mod n):
//   SUBMIT(p)        any node, to all: payload dissemination (digest d).
//   ORDER(e,s,d)     leader: binds s to d.
//   ECHO(e,s,d,sig)  all: signed vote. 2t+1 signed echoes = "prepared
//                    certificate" — at most one d per (e,s) can prepare.
//   COMMIT(e,s,d,sig) all, after preparing. 2t+1 signed commits = a
//                    transferable commit certificate; holders broadcast it
//                    as COMMITTED so every node converges.
//   Delivery strictly in sequence order once payloads are known
//   (GETPAYLOAD/PAYLOAD fills gaps).
//
// Fall-back: a node whose pending payload is not delivered within the
// complaint timeout broadcasts a signed COMPLAIN; t+1 complaints are joined,
// 2t+1 complaints start a binary-agreement instance on "abandon epoch e?".
// A 1-decision triggers the epoch change: every node sends a signed
// EPOCHCHANGE carrying its delivery watermark plus its prepared and commit
// certificates; the new leader bundles 2t+1 of them into NEWEPOCH. Receivers
// deterministically re-derive the bindings that may have committed (highest-
// epoch prepared certificate per sequence; gaps become no-ops), re-run the
// echo/commit phases for them in the new epoch, and the new leader orders
// the still-pending payloads afresh. A 0-decision doubles the timeout and
// re-arms the complaint round.
//
// Guarantees with at most t < n/3 Byzantine nodes (authenticated links):
//   Agreement: honest nodes deliver the same sequence of payloads.
//   Integrity: each payload is delivered at most once.
//   Validity:  a payload submitted by an honest node is eventually
//              delivered (liveness requires fair links; the randomized
//              fall-back removes the need for synchrony in agreement).
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>

#include "abcast/bba.hpp"
#include "obs/metrics.hpp"

namespace sdns::abcast {

using Digest = std::array<std::uint8_t, 32>;

class AtomicBroadcast {
 public:
  struct Callbacks {
    std::function<void(unsigned to, const util::Bytes&)> send;
    /// Total-order output, same sequence at every honest node.
    std::function<void(const util::Bytes& payload)> deliver;
    std::function<double()> now;
    std::function<void(double delay, std::function<void()>)> set_timer;
    // Cost hooks; may be empty.
    std::function<void()> charge_message;
    std::function<void()> charge_auth_sign;
    std::function<void()> charge_auth_verify;
    std::function<void(threshold::CryptoOp)> charge_coin;
    /// Metrics sink (owned by the caller, must outlive the broadcast);
    /// null components count into a shared no-op sink.
    obs::Registry* metrics = nullptr;
  };

  struct Options {
    double complaint_timeout = 2.0;   ///< seconds; doubles per failed attempt
    bool randomized_fallback = true;  ///< gate epoch change on binary agreement
    /// Byzantine fault injection (chaos testing): when this node is the
    /// epoch's leader it binds each sequence number to the real digest for
    /// half of its peers and to a phantom digest (whose payload does not
    /// exist) for the other half.
    bool equivocate_as_leader = false;
  };

  AtomicBroadcast(std::shared_ptr<const GroupPublic> pub, NodeSecret secret,
                  Callbacks callbacks, Options options, util::Rng rng);

  /// a-broadcast a payload: disseminate and (eventually) deliver everywhere.
  void submit(util::Bytes payload);

  /// State-transfer support: advance the delivery cursor past sequence
  /// numbers whose effects the application obtained out of band (a zone
  /// snapshot). Deliveries below `next_deliver` are silently dropped.
  void fast_forward(std::uint64_t next_deliver);

  void on_message(unsigned from, util::BytesView msg);

  // Introspection for tests, benchmarks and the wrapper.
  unsigned epoch() const { return epoch_; }
  unsigned id() const { return secret_.id; }
  bool is_leader() const { return epoch_ % pub_->n == secret_.id; }
  std::uint64_t delivered_count() const { return next_deliver_; }
  /// Whether a byte-identical payload has already come through total order
  /// at this node. Delivered digests are never re-ordered (note_payload
  /// drops them), so a submitter waiting on this digest would wait forever.
  bool already_delivered(const Digest& d) const {
    return delivered_.count(d) != 0;
  }
  std::size_t pending_count() const { return pending_.size(); }
  std::uint64_t epoch_changes() const { return epoch_change_count_; }
  unsigned attempt() const { return attempt_; }
  bool in_epoch_change() const { return in_epoch_change_; }
  bool has_complained() const { return complained_; }
  bool bba_active() const { return bbas_.count(bba_instance()) != 0; }

  /// Message-crafting helpers so tests can play a Byzantine leader.
  static util::Bytes encode_submit(util::BytesView payload);
  static util::Bytes encode_order(unsigned epoch, std::uint64_t seq, const Digest& d);
  static util::Bytes encode_echo(unsigned epoch, std::uint64_t seq, const Digest& d,
                                 const NodeSecret& signer);
  static util::Bytes echo_statement(unsigned epoch, std::uint64_t seq, const Digest& d);
  static Digest digest_of(util::BytesView payload);

 private:
  enum MsgType : std::uint8_t {
    kSubmit = 0xA1,
    kOrder = 0xA2,
    kEcho = 0xA3,
    kCommit = 0xA4,
    kCommitted = 0xA5,
    kGetPayload = 0xA6,
    kPayload = 0xA7,
    kComplain = 0xA8,
    kEpochChange = 0xA9,
    kNewEpoch = 0xAA,
  };

  struct Vote {
    util::Bytes sig;
  };
  struct Slot {
    std::optional<Digest> digest;  ///< binding ordered by the leader
    std::map<unsigned, std::pair<Digest, util::Bytes>> echoes;   // node -> (d, sig)
    std::map<unsigned, std::pair<Digest, util::Bytes>> commits;  // node -> (d, sig)
    bool echo_sent = false;
    bool commit_sent = false;
  };
  struct Cert {  ///< 2t+1 signatures over the same statement
    unsigned epoch = 0;
    std::uint64_t seq = 0;
    Digest digest{};
    std::vector<std::pair<unsigned, util::Bytes>> sigs;
  };

  // --- helpers ---
  void broadcast(const util::Bytes& msg);
  unsigned leader_of(unsigned epoch) const { return epoch % pub_->n; }
  Slot& slot(unsigned epoch, std::uint64_t seq) { return slots_[{epoch, seq}]; }

  void handle_submit(unsigned from, util::Reader& r);
  void handle_order(unsigned from, util::Reader& r);
  void handle_echo(unsigned from, util::Reader& r);
  void handle_commit(unsigned from, util::Reader& r);
  void handle_committed(unsigned from, util::Reader& r);
  void handle_get_payload(unsigned from, util::Reader& r);
  void handle_payload(unsigned from, util::Reader& r);
  void handle_complain(unsigned from, util::Reader& r);
  void handle_epoch_change(unsigned from, util::BytesView whole, util::Reader& r);
  void handle_new_epoch(unsigned from, util::Reader& r);

  void note_payload(util::Bytes payload);
  void leader_order_pending();
  void maybe_echo(unsigned epoch, std::uint64_t seq);
  void check_prepared(unsigned epoch, std::uint64_t seq);
  void check_committed_quorum(unsigned epoch, std::uint64_t seq);
  /// `via_epoch_change` distinguishes commits recovered through the
  /// fall-back (epoch-change certificate replay) from optimistic fast-path
  /// commits — the split the paper's §5 measurements are about.
  void commit(std::uint64_t seq, const Digest& d, const Cert* cert_to_share,
              bool via_epoch_change = false);
  void try_deliver();
  void arm_timer();
  void on_timer();
  void start_fallback_vote(bool my_input);
  void on_fallback_decision(std::uint64_t instance, bool abandon);
  void begin_epoch_change(unsigned new_epoch);
  util::Bytes build_epoch_change_body() const;
  void maybe_send_new_epoch();
  bool adopt_new_epoch(unsigned new_epoch,
                       const std::vector<util::Bytes>& change_messages);
  /// The epoch a complaint/abandonment vote currently targets: the active
  /// epoch, or — while waiting for a NEWEPOCH that may never come because
  /// the incoming leader is faulty — the pending one (escalation skips it).
  unsigned vote_epoch() const { return in_epoch_change_ ? pending_new_epoch_ : epoch_; }
  std::uint64_t bba_instance() const {
    return (static_cast<std::uint64_t>(vote_epoch()) << 20) | attempt_;
  }

  std::shared_ptr<const GroupPublic> pub_;
  NodeSecret secret_;
  Callbacks cb_;
  Options opt_;
  util::Rng rng_;
  ThresholdCoin coin_;

  unsigned epoch_ = 0;
  std::uint32_t attempt_ = 0;
  bool in_epoch_change_ = false;
  unsigned pending_new_epoch_ = 0;

  std::uint64_t next_deliver_ = 0;    ///< lowest undelivered sequence number
  std::uint64_t next_order_seq_ = 0;  ///< leader: next fresh sequence
  std::map<std::pair<unsigned, std::uint64_t>, Slot> slots_;
  std::map<std::uint64_t, Digest> committed_;          // seq -> digest
  std::map<std::uint64_t, Cert> commit_certs_;         // seq -> commit cert
  std::map<std::uint64_t, Cert> prepared_certs_;       // seq -> best prepared cert
  std::map<Digest, util::Bytes> payloads_;
  std::set<Digest> delivered_;
  std::map<Digest, double> pending_;                   // digest -> submit time
  std::set<Digest> ordered_;                           // leader bookkeeping
  std::set<Digest> requested_payloads_;

  // Fall-back state.
  std::map<std::pair<unsigned, std::uint32_t>, std::map<unsigned, util::Bytes>>
      complaints_;  // (epoch, attempt) -> node -> sig
  bool complained_ = false;
  // Agreement sessions are kept for the node's lifetime: coin callbacks and
  // straggler messages may reference them long after a decision.
  std::map<std::uint64_t, std::unique_ptr<BinaryAgreement>> bbas_;
  std::map<unsigned, std::map<unsigned, util::Bytes>> epoch_change_msgs_;
  unsigned new_epoch_sent_for_ = 0;  // highest target we issued NEWEPOCH for
  double epoch_change_started_ = 0;
  bool timer_armed_ = false;
  std::uint64_t epoch_change_count_ = 0;

  // Counters resolved once at construction (see Callbacks::metrics).
  obs::Counter* c_deliver_;
  obs::Counter* c_commit_fast_;
  obs::Counter* c_commit_fallback_;
  obs::Counter* c_fallback_;
  obs::Counter* c_epoch_adopted_;
  obs::Counter* c_complaints_;
  obs::Counter* c_bba_rounds_;
  obs::Counter* c_coin_flips_;
};

}  // namespace sdns::abcast
