#include "abcast/broadcast.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"
#include "util/log.hpp"

namespace sdns::abcast {

using util::Bytes;
using util::BytesView;
using util::Reader;
using util::Writer;

namespace {

const Digest kNullDigest{};

Digest read_digest(Reader& r) {
  Digest d;
  auto raw = r.raw(d.size());
  std::copy(raw.begin(), raw.end(), d.begin());
  return d;
}

void write_digest(Writer& w, const Digest& d) { w.raw(d.data(), d.size()); }

Bytes commit_statement(unsigned epoch, std::uint64_t seq, const Digest& d) {
  Writer w;
  w.str("commit");
  w.u32(epoch);
  w.u64(seq);
  write_digest(w, d);
  return std::move(w).take();
}

Bytes complain_statement(unsigned epoch, std::uint32_t attempt) {
  Writer w;
  w.str("complain");
  w.u32(epoch);
  w.u32(attempt);
  return std::move(w).take();
}

}  // namespace

Digest AtomicBroadcast::digest_of(BytesView payload) {
  Digest d;
  const Bytes h = crypto::Sha256::digest(payload);
  std::copy(h.begin(), h.end(), d.begin());
  return d;
}

Bytes AtomicBroadcast::echo_statement(unsigned epoch, std::uint64_t seq, const Digest& d) {
  Writer w;
  w.str("echo");
  w.u32(epoch);
  w.u64(seq);
  write_digest(w, d);
  return std::move(w).take();
}

Bytes AtomicBroadcast::encode_submit(BytesView payload) {
  Writer w;
  w.u8(kSubmit);
  w.lp32(payload);
  return std::move(w).take();
}

Bytes AtomicBroadcast::encode_order(unsigned epoch, std::uint64_t seq, const Digest& d) {
  Writer w;
  w.u8(kOrder);
  w.u32(epoch);
  w.u64(seq);
  write_digest(w, d);
  return std::move(w).take();
}

Bytes AtomicBroadcast::encode_echo(unsigned epoch, std::uint64_t seq, const Digest& d,
                                   const NodeSecret& signer) {
  Writer w;
  w.u8(kEcho);
  w.u32(epoch);
  w.u64(seq);
  write_digest(w, d);
  w.lp16(node_sign(signer, echo_statement(epoch, seq, d)));
  return std::move(w).take();
}

AtomicBroadcast::AtomicBroadcast(std::shared_ptr<const GroupPublic> pub, NodeSecret secret,
                                 Callbacks callbacks, Options options, util::Rng rng)
    : pub_(std::move(pub)),
      secret_(std::move(secret)),
      cb_(std::move(callbacks)),
      opt_(options),
      rng_(rng),
      coin_(pub_, secret_,
            ThresholdCoin::Callbacks{
                [this](const Bytes& m) { broadcast(m); },
                [this](threshold::CryptoOp op) {
                  if (cb_.charge_coin) cb_.charge_coin(op);
                },
                [this] { c_coin_flips_->inc(); }},
            rng_.fork()) {
  obs::Registry* m = cb_.metrics;
  c_deliver_ = m ? &m->counter("abcast.deliver") : &obs::noop_counter();
  c_commit_fast_ = m ? &m->counter("abcast.commit.fast") : &obs::noop_counter();
  c_commit_fallback_ =
      m ? &m->counter("abcast.commit.fallback") : &obs::noop_counter();
  c_fallback_ = m ? &m->counter("abcast.fallback") : &obs::noop_counter();
  c_epoch_adopted_ =
      m ? &m->counter("abcast.epoch_change") : &obs::noop_counter();
  c_complaints_ = m ? &m->counter("abcast.complaints") : &obs::noop_counter();
  c_bba_rounds_ = m ? &m->counter("abcast.bba.rounds") : &obs::noop_counter();
  c_coin_flips_ = m ? &m->counter("abcast.coin.flips") : &obs::noop_counter();
}

void AtomicBroadcast::broadcast(const Bytes& msg) {
  if (!cb_.send) return;
  for (unsigned i = 0; i < pub_->n; ++i) {
    if (i != secret_.id) cb_.send(i, msg);
  }
}

void AtomicBroadcast::submit(Bytes payload) {
  broadcast(encode_submit(payload));
  note_payload(std::move(payload));
}

void AtomicBroadcast::fast_forward(std::uint64_t next_deliver) {
  if (next_deliver <= next_deliver_) return;
  next_deliver_ = next_deliver;
  if (next_order_seq_ < next_deliver) next_order_seq_ = next_deliver;
  // State transfer supersedes in-flight submissions: a pending payload was
  // either delivered inside the skipped prefix (its effect is in the
  // snapshot, but this node will never see its sequence number, so it would
  // pend — and feed the complaint timer — forever) or is still held pending
  // by the peers that saw its SUBMIT. Clients re-drive genuinely lost
  // requests; that is their role even without state transfer.
  pending_.clear();
  try_deliver();
}

void AtomicBroadcast::note_payload(Bytes payload) {
  const Digest d = digest_of(payload);
  const bool fresh = payloads_.emplace(d, std::move(payload)).second;
  if (!delivered_.count(d) && !pending_.count(d)) {
    pending_.emplace(d, cb_.now ? cb_.now() : 0.0);
    arm_timer();
  }
  if (fresh) {
    // Echoes we withheld pending this payload (data-availability gate).
    // Snapshot first: echoing can commit/deliver synchronously, and the
    // deliver callback may re-enter and grow slots_.
    std::vector<std::uint64_t> waiting;
    for (const auto& [key, sl] : slots_) {
      if (key.first == epoch_ && sl.digest && *sl.digest == d && !sl.echo_sent) {
        waiting.push_back(key.second);
      }
    }
    for (std::uint64_t s : waiting) maybe_echo(epoch_, s);
    try_deliver();
  }
  if (is_leader() && !in_epoch_change_) leader_order_pending();
}

void AtomicBroadcast::leader_order_pending() {
  // Snapshot first: ordering can commit and deliver synchronously (n = 1 or
  // zero-latency loops), which erases from pending_ mid-iteration.
  std::vector<Digest> todo;
  for (const auto& [d, since] : pending_) {
    if (!ordered_.count(d) && !delivered_.count(d)) todo.push_back(d);
  }
  for (const Digest& d : todo) {
    if (ordered_.count(d) || delivered_.count(d)) continue;
    const std::uint64_t s = next_order_seq_++;
    ordered_.insert(d);
    Slot& sl = slot(epoch_, s);
    sl.digest = d;
    if (opt_.equivocate_as_leader && pub_->n > 1) {
      // Byzantine leader: half the peers see a phantom binding. The phantom
      // digest has no payload anywhere, so honest nodes must refuse to vote
      // for it (the availability gate in maybe_echo) or the slot could
      // commit a payload nobody can ever deliver.
      Digest alt = d;
      alt[0] = static_cast<std::uint8_t>(~alt[0]);
      const Bytes real_order = encode_order(epoch_, s, d);
      const Bytes fake_order = encode_order(epoch_, s, alt);
      bool fake = true;
      for (unsigned i = 0; i < pub_->n; ++i) {
        if (i == secret_.id) continue;
        if (cb_.send) cb_.send(i, fake ? fake_order : real_order);
        fake = !fake;
      }
    } else {
      broadcast(encode_order(epoch_, s, d));
    }
    maybe_echo(epoch_, s);
  }
}

void AtomicBroadcast::maybe_echo(unsigned epoch, std::uint64_t seq) {
  if (epoch != epoch_ || in_epoch_change_) return;
  Slot& sl = slot(epoch, seq);
  if (!sl.digest || sl.echo_sent) return;
  auto committed = committed_.find(seq);
  if (committed != committed_.end() && committed->second != *sl.digest) return;
  // Data-availability gate: never vote for a binding whose payload we do not
  // hold — an equivocating leader could otherwise gather a quorum on a
  // phantom digest and wedge delivery at this sequence number forever. Ask
  // for the payload instead; note_payload() re-runs this echo when it lands.
  // (The null digest is the epoch-change no-op and carries no payload.)
  if (*sl.digest != kNullDigest && !payloads_.count(*sl.digest)) {
    if (requested_payloads_.insert(*sl.digest).second) {
      Writer w;
      w.u8(kGetPayload);
      write_digest(w, *sl.digest);
      broadcast(std::move(w).take());
    }
    return;
  }
  sl.echo_sent = true;
  if (cb_.charge_auth_sign) cb_.charge_auth_sign();
  Bytes sig = node_sign(secret_, echo_statement(epoch, seq, *sl.digest));
  sl.echoes[secret_.id] = {*sl.digest, sig};
  Writer w;
  w.u8(kEcho);
  w.u32(epoch);
  w.u64(seq);
  write_digest(w, *sl.digest);
  w.lp16(sig);
  broadcast(std::move(w).take());
  check_prepared(epoch, seq);
}

void AtomicBroadcast::on_message(unsigned from, BytesView msg) {
  if (msg.empty() || from >= pub_->n) return;
  if (cb_.charge_message) cb_.charge_message();
  if (ThresholdCoin::is_coin_message(msg)) {
    coin_.on_message(msg);
    return;
  }
  if (BinaryAgreement::is_bba_message(msg)) {
    const auto instance = BinaryAgreement::peek_instance(msg);
    if (!instance) return;
    auto session = bbas_.find(*instance);
    if (session == bbas_.end()) {
      if (*instance != bba_instance()) return;
      // A peer started the abandonment vote; join with our own evidence.
      const auto it = complaints_.find({vote_epoch(), attempt_});
      const bool input =
          it != complaints_.end() && it->second.size() >= pub_->quorum();
      start_fallback_vote(input);
      session = bbas_.find(*instance);
      if (session == bbas_.end()) return;
    }
    session->second->on_message(from, msg);
    return;
  }
  try {
    Reader r(msg);
    const auto type = static_cast<MsgType>(r.u8());
    switch (type) {
      case kSubmit: handle_submit(from, r); break;
      case kOrder: handle_order(from, r); break;
      case kEcho: handle_echo(from, r); break;
      case kCommit: handle_commit(from, r); break;
      case kCommitted: handle_committed(from, r); break;
      case kGetPayload: handle_get_payload(from, r); break;
      case kPayload: handle_payload(from, r); break;
      case kComplain: handle_complain(from, r); break;
      case kEpochChange: handle_epoch_change(from, msg, r); break;
      case kNewEpoch: handle_new_epoch(from, r); break;
      default: break;
    }
  } catch (const util::ParseError&) {
    SDNS_LOG_DEBUG("abcast ", secret_.id, ": malformed message from ", from);
  }
}

void AtomicBroadcast::handle_submit(unsigned, Reader& r) {
  note_payload(r.lp32());
}

void AtomicBroadcast::handle_order(unsigned from, Reader& r) {
  const unsigned epoch = r.u32();
  const std::uint64_t seq = r.u64();
  const Digest d = read_digest(r);
  // Accept bindings for the current AND future epochs: a freshly elected
  // leader starts ordering the moment it adopts the new epoch, which can be
  // before this node has processed the NEWEPOCH. The echo itself is gated
  // on having entered the epoch (maybe_echo); adopt_new_epoch replays it.
  if (from != leader_of(epoch) || epoch < epoch_) return;
  Slot& sl = slot(epoch, seq);
  if (sl.digest) return;  // first binding wins; equivocation cannot re-bind
  sl.digest = d;
  maybe_echo(epoch, seq);
}

void AtomicBroadcast::handle_echo(unsigned from, Reader& r) {
  const unsigned epoch = r.u32();
  const std::uint64_t seq = r.u64();
  const Digest d = read_digest(r);
  const Bytes sig = r.lp16();
  Slot& sl = slot(epoch, seq);
  if (sl.echoes.count(from)) return;
  if (cb_.charge_auth_verify) cb_.charge_auth_verify();
  if (!node_verify(*pub_, from, echo_statement(epoch, seq, d), sig)) return;
  sl.echoes[from] = {d, sig};
  check_prepared(epoch, seq);
}

void AtomicBroadcast::check_prepared(unsigned epoch, std::uint64_t seq) {
  Slot& sl = slot(epoch, seq);
  if (sl.commit_sent) return;
  // Count echo votes per digest.
  std::map<Digest, std::vector<std::pair<unsigned, Bytes>>> votes;
  for (const auto& [node, vote] : sl.echoes) {
    votes[vote.first].push_back({node, vote.second});
  }
  for (auto& [d, sigs] : votes) {
    if (sigs.size() < pub_->quorum()) continue;
    // Prepared. Remember the certificate (best per seq = highest epoch).
    Cert cert{epoch, seq, d, sigs};
    auto it = prepared_certs_.find(seq);
    if (it == prepared_certs_.end() || it->second.epoch < epoch) {
      prepared_certs_[seq] = cert;
    }
    sl.commit_sent = true;
    if (cb_.charge_auth_sign) cb_.charge_auth_sign();
    Bytes sig = node_sign(secret_, commit_statement(epoch, seq, d));
    sl.commits[secret_.id] = {d, sig};
    Writer w;
    w.u8(kCommit);
    w.u32(epoch);
    w.u64(seq);
    write_digest(w, d);
    w.lp16(sig);
    broadcast(std::move(w).take());
    check_committed_quorum(epoch, seq);
    return;
  }
}

void AtomicBroadcast::handle_commit(unsigned from, Reader& r) {
  const unsigned epoch = r.u32();
  const std::uint64_t seq = r.u64();
  const Digest d = read_digest(r);
  const Bytes sig = r.lp16();
  Slot& sl = slot(epoch, seq);
  if (sl.commits.count(from)) return;
  if (cb_.charge_auth_verify) cb_.charge_auth_verify();
  if (!node_verify(*pub_, from, commit_statement(epoch, seq, d), sig)) return;
  sl.commits[from] = {d, sig};
  check_committed_quorum(epoch, seq);
}

void AtomicBroadcast::check_committed_quorum(unsigned epoch, std::uint64_t seq) {
  if (committed_.count(seq)) return;
  Slot& sl = slot(epoch, seq);
  std::map<Digest, std::vector<std::pair<unsigned, Bytes>>> votes;
  for (const auto& [node, vote] : sl.commits) {
    votes[vote.first].push_back({node, vote.second});
  }
  for (auto& [d, sigs] : votes) {
    if (sigs.size() < pub_->quorum()) continue;
    Cert cert{epoch, seq, d, sigs};
    commit(seq, d, &cert);
    return;
  }
}

namespace {
void encode_cert(Writer& w, const AtomicBroadcast* /*self*/, unsigned epoch,
                 std::uint64_t seq, const Digest& d,
                 const std::vector<std::pair<unsigned, Bytes>>& sigs) {
  w.u32(epoch);
  w.u64(seq);
  w.raw(d.data(), d.size());
  w.u16(static_cast<std::uint16_t>(sigs.size()));
  for (const auto& [node, sig] : sigs) {
    w.u32(node);
    w.lp16(sig);
  }
}
}  // namespace

void AtomicBroadcast::commit(std::uint64_t seq, const Digest& d, const Cert* cert,
                             bool via_epoch_change) {
  auto it = committed_.find(seq);
  if (it != committed_.end()) {
    if (it->second != d) {
      SDNS_LOG_ERROR("abcast ", secret_.id, ": conflicting commit for seq ", seq);
    }
    return;
  }
  committed_[seq] = d;
  (via_epoch_change ? c_commit_fallback_ : c_commit_fast_)->inc();
  if (cert) {
    commit_certs_[seq] = *cert;
    Writer w;
    w.u8(kCommitted);
    encode_cert(w, this, cert->epoch, seq, d, cert->sigs);
    broadcast(std::move(w).take());
  }
  try_deliver();
}

void AtomicBroadcast::handle_committed(unsigned, Reader& r) {
  const unsigned epoch = r.u32();
  const std::uint64_t seq = r.u64();
  const Digest d = read_digest(r);
  if (committed_.count(seq)) return;
  const std::uint16_t count = r.u16();
  std::set<unsigned> seen;
  std::vector<std::pair<unsigned, Bytes>> sigs;
  const Bytes statement = commit_statement(epoch, seq, d);
  for (std::uint16_t i = 0; i < count; ++i) {
    const unsigned node = r.u32();
    Bytes sig = r.lp16();
    if (!seen.insert(node).second) continue;
    if (cb_.charge_auth_verify) cb_.charge_auth_verify();
    if (!node_verify(*pub_, node, statement, sig)) continue;
    sigs.push_back({node, std::move(sig)});
  }
  if (sigs.size() < pub_->quorum()) return;
  Cert cert{epoch, seq, d, std::move(sigs)};
  commit_certs_.emplace(seq, cert);
  commit(seq, d, nullptr);
}

void AtomicBroadcast::handle_get_payload(unsigned from, Reader& r) {
  const Digest d = read_digest(r);
  auto it = payloads_.find(d);
  if (it == payloads_.end() || !cb_.send) return;
  Writer w;
  w.u8(kPayload);
  w.lp32(it->second);
  cb_.send(from, std::move(w).take());
}

void AtomicBroadcast::handle_payload(unsigned, Reader& r) {
  note_payload(r.lp32());
}

void AtomicBroadcast::try_deliver() {
  for (;;) {
    auto it = committed_.find(next_deliver_);
    if (it == committed_.end()) return;
    const Digest& d = it->second;
    if (d == kNullDigest) {
      ++next_deliver_;
      continue;
    }
    auto payload = payloads_.find(d);
    if (payload == payloads_.end()) {
      if (requested_payloads_.insert(d).second) {
        Writer w;
        w.u8(kGetPayload);
        write_digest(w, d);
        broadcast(std::move(w).take());
      }
      return;  // stalled until the payload arrives
    }
    if (!delivered_.count(d)) {
      delivered_.insert(d);
      pending_.erase(d);
      c_deliver_->inc();
      if (cb_.deliver) cb_.deliver(payload->second);
    }
    ++next_deliver_;
  }
}

// ---- fall-back path ---------------------------------------------------------

void AtomicBroadcast::arm_timer() {
  if (timer_armed_ || !cb_.set_timer) return;
  timer_armed_ = true;
  cb_.set_timer(opt_.complaint_timeout / 2, [this] {
    timer_armed_ = false;
    on_timer();
  });
}

void AtomicBroadcast::on_timer() {
  if (pending_.empty() && !in_epoch_change_) return;
  const double now = cb_.now ? cb_.now() : 0.0;
  bool overdue = false;
  if (in_epoch_change_) {
    // Waiting on the incoming leader's NEWEPOCH; if it never arrives the
    // leader of the pending epoch is faulty too — complain to skip it.
    const double waited = now - epoch_change_started_;
    overdue = waited > 2 * opt_.complaint_timeout;
    if (waited > opt_.complaint_timeout) {
      // Re-broadcast our EPOCHCHANGE: the incoming leader may have missed
      // the one-shot original (crash, partition) and be short of its quorum.
      auto& msgs = epoch_change_msgs_[pending_new_epoch_];
      auto own = msgs.find(secret_.id);
      if (own != msgs.end()) broadcast(own->second);
    }
  } else {
    for (const auto& [d, since] : pending_) {
      if (now - since > opt_.complaint_timeout) {
        overdue = true;
        break;
      }
    }
    if (overdue) {
      // Re-announce overdue payloads: the original SUBMIT broadcast may have
      // been lost to a crashed or partitioned peer — in particular to the
      // node that is leader now. Peers that already delivered them ignore
      // the duplicate (delivered_ check in note_payload).
      for (const auto& [d, since] : pending_) {
        if (now - since > opt_.complaint_timeout && !ordered_.count(d)) {
          auto payload = payloads_.find(d);
          if (payload != payloads_.end()) broadcast(encode_submit(payload->second));
        }
      }
    }
  }
  if (overdue && !complained_) {
    const unsigned target = vote_epoch();
    complained_ = true;
    c_complaints_->inc();
    if (cb_.charge_auth_sign) cb_.charge_auth_sign();
    Bytes sig = node_sign(secret_, complain_statement(target, attempt_));
    complaints_[{target, attempt_}][secret_.id] = sig;
    Writer w;
    w.u8(kComplain);
    w.u32(target);
    w.u32(attempt_);
    w.lp16(sig);
    broadcast(std::move(w).take());
    const auto& set = complaints_[{target, attempt_}];
    if (set.size() >= pub_->quorum()) start_fallback_vote(true);
  } else if (overdue && complained_) {
    // Still stuck on a later tick: retransmit the fall-back machinery. The
    // complaint, the agreement votes and the coin share all went out exactly
    // once; peers that were crashed or partitioned at that moment never saw
    // them, and with only n-t live nodes every one of those messages is
    // needed to close a quorum. Receivers de-duplicate, so this is safe.
    const auto& set = complaints_[{vote_epoch(), attempt_}];
    auto own = set.find(secret_.id);
    if (own != set.end()) {
      Writer w;
      w.u8(kComplain);
      w.u32(vote_epoch());
      w.u32(attempt_);
      w.lp16(own->second);
      broadcast(std::move(w).take());
    }
    auto bba = bbas_.find(bba_instance());
    if (bba != bbas_.end()) bba->second->rebroadcast();
  }
  arm_timer();
}

void AtomicBroadcast::handle_complain(unsigned from, Reader& r) {
  const unsigned epoch = r.u32();
  const std::uint32_t attempt = r.u32();
  const Bytes sig = r.lp16();
  auto& set = complaints_[{epoch, attempt}];
  if (set.count(from)) return;
  if (cb_.charge_auth_verify) cb_.charge_auth_verify();
  if (!node_verify(*pub_, from, complain_statement(epoch, attempt), sig)) return;
  set[from] = sig;
  if (epoch != vote_epoch()) return;
  if (attempt > attempt_ &&
      set.size() >= static_cast<std::size_t>(pub_->t) + 1) {
    // t+1 complaints for a later attempt include an honest node's: the group
    // ran an abandonment vote we missed (crash, partition) and decided to
    // keep the epoch. Adopt the attempt so our complaint and votes rejoin
    // the quorum — stuck at the old attempt we could never participate
    // again, and the group may now need us to reach n-t.
    attempt_ = attempt;
    complained_ = false;
  }
  if (attempt != attempt_) return;
  if (set.size() >= static_cast<std::size_t>(pub_->t) + 1 && !complained_) {
    // Join the complaint: at least one honest node is stuck.
    complained_ = true;
    c_complaints_->inc();
    if (cb_.charge_auth_sign) cb_.charge_auth_sign();
    Bytes my_sig = node_sign(secret_, complain_statement(epoch, attempt_));
    set[secret_.id] = my_sig;
    Writer w;
    w.u8(kComplain);
    w.u32(epoch);
    w.u32(attempt_);
    w.lp16(my_sig);
    broadcast(std::move(w).take());
  }
  if (set.size() >= pub_->quorum()) start_fallback_vote(true);
}

void AtomicBroadcast::start_fallback_vote(bool my_input) {
  if (!opt_.randomized_fallback) {
    on_fallback_decision(bba_instance(), true);
    return;
  }
  const std::uint64_t instance = bba_instance();
  auto it = bbas_.find(instance);
  if (it == bbas_.end()) {
    auto session = std::make_unique<BinaryAgreement>(
        pub_, secret_.id, instance, coin_,
        BinaryAgreement::Callbacks{
            [this](const Bytes& m) { broadcast(m); },
            [this, instance](bool abandon) { on_fallback_decision(instance, abandon); },
            [this] {
              if (cb_.charge_message) cb_.charge_message();
            }});
    it = bbas_.emplace(instance, std::move(session)).first;
  }
  if (!it->second->started()) it->second->start(my_input);
}

void AtomicBroadcast::on_fallback_decision(std::uint64_t instance, bool abandon) {
  // Stale sessions (older epoch or attempt) may still decide; ignore them.
  if (instance != bba_instance()) return;
  auto bba_it = bbas_.find(instance);
  if (bba_it != bbas_.end()) {
    c_bba_rounds_->inc(bba_it->second->rounds_used() + 1);
  }
  if (abandon) {
    begin_epoch_change(vote_epoch() + 1);
  } else {
    ++attempt_;
    complained_ = false;
    opt_.complaint_timeout *= 2;
    arm_timer();
  }
}

util::Bytes AtomicBroadcast::build_epoch_change_body() const {
  Writer w;
  w.u32(pending_new_epoch_);
  w.u64(next_deliver_);
  // Commit certificates for undelivered sequence numbers.
  std::vector<const Cert*> commits;
  for (const auto& [seq, cert] : commit_certs_) {
    if (seq >= next_deliver_) commits.push_back(&cert);
  }
  w.u16(static_cast<std::uint16_t>(commits.size()));
  for (const Cert* c : commits) encode_cert(w, this, c->epoch, c->seq, c->digest, c->sigs);
  // Prepared certificates.
  std::vector<const Cert*> prepared;
  for (const auto& [seq, cert] : prepared_certs_) {
    if (seq >= next_deliver_ && !commit_certs_.count(seq)) prepared.push_back(&cert);
  }
  w.u16(static_cast<std::uint16_t>(prepared.size()));
  for (const Cert* c : prepared) encode_cert(w, this, c->epoch, c->seq, c->digest, c->sigs);
  return std::move(w).take();
}

void AtomicBroadcast::begin_epoch_change(unsigned new_epoch) {
  if (new_epoch <= epoch_) return;
  if (in_epoch_change_ && pending_new_epoch_ >= new_epoch) return;
  in_epoch_change_ = true;
  pending_new_epoch_ = new_epoch;
  epoch_change_started_ = cb_.now ? cb_.now() : 0.0;
  complained_ = false;  // escalation complaints target the pending epoch
  ++epoch_change_count_;
  c_fallback_->inc();
  if (cb_.metrics) {
    cb_.metrics->trace().record(cb_.now ? cb_.now() : 0.0, "abcast",
                                "epoch-change", new_epoch, next_deliver_);
  }
  const Bytes body = build_epoch_change_body();
  if (cb_.charge_auth_sign) cb_.charge_auth_sign();
  const Bytes sig = node_sign(secret_, body);
  Writer w;
  w.u8(kEpochChange);
  w.u32(new_epoch);
  w.u32(secret_.id);
  w.lp32(body);
  w.lp16(sig);
  Bytes msg = std::move(w).take();
  epoch_change_msgs_[new_epoch][secret_.id] = msg;
  broadcast(msg);
  maybe_send_new_epoch();
}

void AtomicBroadcast::handle_epoch_change(unsigned from, BytesView whole, Reader& r) {
  const unsigned new_epoch = r.u32();
  const unsigned sender = r.u32();
  const Bytes body = r.lp32();
  const Bytes sig = r.lp16();
  if (sender != from || new_epoch <= epoch_) return;
  auto& msgs = epoch_change_msgs_[new_epoch];
  if (msgs.count(from)) return;
  if (cb_.charge_auth_verify) cb_.charge_auth_verify();
  if (!node_verify(*pub_, from, body, sig)) return;
  // Sanity: the body must name the same target epoch.
  try {
    Reader br(body);
    if (br.u32() != new_epoch) return;
  } catch (const util::ParseError&) {
    return;
  }
  msgs[from] = Bytes(whole.begin(), whole.end());
  // Evidence that an honest node abandoned the epoch: join the change.
  if (msgs.size() >= static_cast<std::size_t>(pub_->t) + 1 &&
      (!in_epoch_change_ || pending_new_epoch_ < new_epoch)) {
    begin_epoch_change(new_epoch);
  }
  maybe_send_new_epoch();
}

void AtomicBroadcast::maybe_send_new_epoch() {
  if (!in_epoch_change_) return;
  const unsigned target = pending_new_epoch_;
  if (leader_of(target) != secret_.id || new_epoch_sent_for_ >= target) return;
  auto& msgs = epoch_change_msgs_[target];
  if (msgs.size() < pub_->quorum()) return;
  new_epoch_sent_for_ = target;
  Writer w;
  w.u8(kNewEpoch);
  w.u32(target);
  w.u16(static_cast<std::uint16_t>(pub_->quorum()));
  std::size_t included = 0;
  std::vector<Bytes> selected;
  for (const auto& [node, raw] : msgs) {
    if (included == pub_->quorum()) break;
    w.lp32(raw);
    selected.push_back(raw);
    ++included;
  }
  broadcast(w.bytes());
  adopt_new_epoch(target, selected);
}

void AtomicBroadcast::handle_new_epoch(unsigned from, Reader& r) {
  const unsigned target = r.u32();
  if (from != leader_of(target) || target <= epoch_) return;
  const std::uint16_t count = r.u16();
  std::vector<Bytes> msgs;
  for (std::uint16_t i = 0; i < count; ++i) msgs.push_back(r.lp32());
  adopt_new_epoch(target, msgs);
}

bool AtomicBroadcast::adopt_new_epoch(unsigned target,
                                      const std::vector<Bytes>& change_messages) {
  if (target <= epoch_) return false;
  // Validate the bundle: quorum of distinct, correctly signed EPOCHCHANGE
  // messages for this target epoch.
  struct Parsed {
    unsigned sender;
    std::uint64_t watermark;
    std::vector<Cert> commits;
    std::vector<Cert> prepared;
  };
  std::vector<Parsed> parsed;
  std::set<unsigned> senders;
  for (const Bytes& raw : change_messages) {
    try {
      Reader r(raw);
      if (r.u8() != kEpochChange) return false;
      if (r.u32() != target) return false;
      const unsigned sender = r.u32();
      const Bytes body = r.lp32();
      const Bytes sig = r.lp16();
      if (!senders.insert(sender).second) return false;
      if (cb_.charge_auth_verify) cb_.charge_auth_verify();
      if (!node_verify(*pub_, sender, body, sig)) return false;
      Reader br(body);
      Parsed p;
      p.sender = sender;
      if (br.u32() != target) return false;
      p.watermark = br.u64();
      auto read_cert = [&br]() {
        Cert c;
        c.epoch = br.u32();
        c.seq = br.u64();
        c.digest = read_digest(br);
        const std::uint16_t nsigs = br.u16();
        for (std::uint16_t i = 0; i < nsigs; ++i) {
          const unsigned node = br.u32();
          c.sigs.push_back({node, br.lp16()});
        }
        return c;
      };
      const std::uint16_t ncommits = br.u16();
      for (std::uint16_t i = 0; i < ncommits; ++i) p.commits.push_back(read_cert());
      const std::uint16_t nprepared = br.u16();
      for (std::uint16_t i = 0; i < nprepared; ++i) p.prepared.push_back(read_cert());
      parsed.push_back(std::move(p));
    } catch (const util::ParseError&) {
      return false;
    }
  }
  if (parsed.size() < pub_->quorum()) return false;

  // Verify and install certificates from the union.
  auto cert_valid = [this](const Cert& c, bool is_commit) {
    const Bytes statement = is_commit ? commit_statement(c.epoch, c.seq, c.digest)
                                      : echo_statement(c.epoch, c.seq, c.digest);
    std::set<unsigned> nodes;
    std::size_t valid = 0;
    for (const auto& [node, sig] : c.sigs) {
      if (!nodes.insert(node).second) continue;
      if (cb_.charge_auth_verify) cb_.charge_auth_verify();
      if (node_verify(*pub_, node, statement, sig)) ++valid;
    }
    return valid >= pub_->quorum();
  };
  std::map<std::uint64_t, Cert> best_prepared;
  std::uint64_t hi = next_deliver_ == 0 ? 0 : next_deliver_ - 1;
  bool any = next_deliver_ > 0;
  for (const auto& p : parsed) {
    for (const auto& c : p.commits) {
      if (c.seq < next_deliver_ || committed_.count(c.seq)) continue;
      if (!cert_valid(c, /*is_commit=*/true)) continue;
      commit_certs_.emplace(c.seq, c);
      commit(c.seq, c.digest, nullptr, /*via_epoch_change=*/true);
      hi = std::max(hi, c.seq);
      any = true;
    }
    for (const auto& c : p.prepared) {
      if (c.seq < next_deliver_ || committed_.count(c.seq)) continue;
      if (!cert_valid(c, /*is_commit=*/false)) continue;
      auto it = best_prepared.find(c.seq);
      if (it == best_prepared.end() || it->second.epoch < c.epoch) {
        best_prepared[c.seq] = c;
      }
      hi = std::max(hi, c.seq);
      any = true;
    }
  }

  // Enter the new epoch.
  epoch_ = target;
  attempt_ = 0;
  in_epoch_change_ = false;
  complained_ = false;

  ordered_.clear();
  const std::uint64_t fresh_base = any ? hi + 1 : next_deliver_;
  next_order_seq_ = fresh_base;

  // Re-run agreement in the new epoch for every sequence number that might
  // have committed somewhere: the best prepared binding, or a no-op.
  for (std::uint64_t s = next_deliver_; s < fresh_base; ++s) {
    if (committed_.count(s)) continue;
    Slot& sl = slot(epoch_, s);
    auto it = best_prepared.find(s);
    sl.digest = it != best_prepared.end() ? it->second.digest : kNullDigest;
    maybe_echo(epoch_, s);
  }
  // Replay bindings the new leader ordered before we finished adopting.
  for (auto& [key, sl] : slots_) {
    if (key.first == epoch_ && sl.digest && !sl.echo_sent) {
      maybe_echo(epoch_, key.second);
    }
  }
  if (is_leader()) leader_order_pending();
  arm_timer();
  c_epoch_adopted_->inc();
  if (cb_.metrics) {
    cb_.metrics->trace().record(cb_.now ? cb_.now() : 0.0, "abcast",
                                "epoch-adopted", epoch_, next_deliver_);
  }
  SDNS_LOG_INFO("abcast ", secret_.id, ": entered epoch ", epoch_);
  return true;
}

}  // namespace sdns::abcast
