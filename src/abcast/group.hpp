// Group configuration for the replicated service (SINTRA's trusted setup).
//
// The paper §4.3: "SINTRA requires manual key distribution before it can be
// invoked. In particular, there is a key generation utility that must be run
// by a trusted entity..."  generate_group() is that utility: it produces,
// for an (n, t) group,
//   - one RSA signing keypair per node (transferable protocol certificates),
//   - an (n, t) threshold-RSA key used for the common coin of the
//     randomized Byzantine agreement (the CKS coin construction), and
//   - link-authentication secrets are implied by the simulator's
//     authenticated point-to-point channels.
#pragma once

#include <memory>
#include <vector>

#include "crypto/rsa.hpp"
#include "threshold/shoup.hpp"

namespace sdns::abcast {

/// Public knowledge shared by every group member and (partially) clients.
struct GroupPublic {
  unsigned n = 0;
  unsigned t = 0;
  std::vector<crypto::RsaPublicKey> node_keys;  ///< index = node id (0-based)
  threshold::ThresholdPublicKey coin_key;

  /// Byzantine quorum: n - t. Two quorums intersect in >= n - 2t >= t + 1
  /// nodes (at least one honest) for any n > 3t, which is what the prepared/
  /// commit certificate arguments and the view-change rule rely on.
  std::size_t quorum() const { return static_cast<std::size_t>(n) - t; }
};

/// One node's private material.
struct NodeSecret {
  unsigned id = 0;  ///< 0-based node id
  crypto::RsaPrivateKey signing_key;
  threshold::KeyShare coin_share;
};

struct Group {
  std::shared_ptr<const GroupPublic> pub;
  std::vector<NodeSecret> secrets;  ///< index = node id
};

/// Trusted dealer. `bits` sizes both node RSA keys and the coin modulus;
/// tests use 512 via safe-prime fixtures.
Group generate_group(util::Rng& rng, unsigned n, unsigned t, std::size_t bits);

/// Sign / verify protocol statements with node keys.
util::Bytes node_sign(const NodeSecret& secret, util::BytesView statement);
bool node_verify(const GroupPublic& pub, unsigned node, util::BytesView statement,
                 util::BytesView sig);

// ---- key-material serialization (§4.3) -------------------------------------
// The dealer writes one public file for everybody plus one private file per
// server, "transported over a secure channel to every server (typically
// using SSH)". Decoders throw util::ParseError on malformed input.
util::Bytes encode_group_public(const GroupPublic& pub);
GroupPublic decode_group_public(util::BytesView b);
util::Bytes encode_node_secret(const NodeSecret& secret);
NodeSecret decode_node_secret(util::BytesView b);

}  // namespace sdns::abcast
