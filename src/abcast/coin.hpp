// Common coin from threshold RSA (the Cachin-Kursawe-Shoup construction).
//
// The coin for (instance, round) is derived from the unique RSA threshold
// signature on the string "coin|instance|round": each node releases its
// signature share (with correctness proof); t+1 valid shares assemble the
// signature, whose hash's low bit is the coin value.  Because the signature
// is *unique*, every node obtains the same bit, and because t shares reveal
// nothing, the adversary cannot predict the coin before honest nodes release
// their shares — exactly the property the randomized agreement needs.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "abcast/group.hpp"
#include "threshold/protocol.hpp"

namespace sdns::abcast {

class ThresholdCoin {
 public:
  struct Callbacks {
    /// Send a coin message to every other node.
    std::function<void(const util::Bytes&)> send_to_all;
    /// Cost hook (proof generation/verification); may be empty.
    std::function<void(threshold::CryptoOp)> charge;
    /// Fired once per resolved coin (a slot's value assembled); may be
    /// empty. The observability layer counts flips through this.
    std::function<void()> on_flip;
  };

  ThresholdCoin(std::shared_ptr<const GroupPublic> pub, NodeSecret secret,
                Callbacks callbacks, util::Rng rng);

  /// Request the coin for (instance, round). `done` fires exactly once, as
  /// soon as t+1 valid shares are known (possibly synchronously if cached).
  void request(std::uint64_t instance, std::uint32_t round,
               std::function<void(bool)> done);

  /// Feed a coin protocol message from another node.
  void on_message(util::BytesView msg);

  /// Re-broadcast our share for an unresolved (instance, round): the one-shot
  /// release in request() can be lost to crashed or partitioned peers, and
  /// without it the group may sit below the t+1 assembly threshold forever.
  /// No-op if the share was never released or the coin already resolved.
  void resend(std::uint64_t instance, std::uint32_t round);

  /// True if `msg` is a coin message (dispatch helper for the owner).
  static bool is_coin_message(util::BytesView msg);

 private:
  struct Slot {
    bool released = false;
    util::Bytes share_frame;  ///< our encoded share message, for resend()
    std::map<unsigned, threshold::SignatureShare> shares;
    std::optional<bool> value;
    std::vector<std::function<void(bool)>> waiters;
  };

  bn::BigInt coin_element(std::uint64_t instance, std::uint32_t round) const;
  void release_share(std::uint64_t instance, std::uint32_t round, Slot& slot);
  void try_assemble(std::uint64_t instance, std::uint32_t round, Slot& slot);

  std::shared_ptr<const GroupPublic> pub_;
  // Shared crypto context for the coin key: Montgomery state and fixed-base
  // tables reused across every share release/verification/assembly.
  std::shared_ptr<const threshold::CryptoContext> ctx_;
  NodeSecret secret_;
  Callbacks cb_;
  util::Rng rng_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, Slot> slots_;
};

}  // namespace sdns::abcast
