#include "abcast/group.hpp"

#include <stdexcept>

#include "threshold/fixtures.hpp"

namespace sdns::abcast {

Group generate_group(util::Rng& rng, unsigned n, unsigned t, std::size_t bits) {
  if (n < 3 * t + 1) throw std::domain_error("group requires n >= 3t+1");
  Group group;
  auto pub = std::make_shared<GroupPublic>();
  pub->n = n;
  pub->t = t;

  threshold::DealtKey coin;
  if (bits == 512) {
    // Fast path used by tests and benchmarks: fixture safe primes.
    coin = threshold::deal_with_primes(rng, n, t, threshold::fixtures::safe_prime_256_a(),
                                       threshold::fixtures::safe_prime_256_b());
  } else if (bits == 1024) {
    coin = threshold::deal_with_primes(rng, n, t, threshold::fixtures::safe_prime_512_a(),
                                       threshold::fixtures::safe_prime_512_b());
  } else {
    coin = threshold::deal(rng, n, t, bits);
  }
  pub->coin_key = coin.pub;

  group.secrets.resize(n);
  for (unsigned i = 0; i < n; ++i) {
    group.secrets[i].id = i;
    group.secrets[i].signing_key = crypto::rsa_generate(rng, bits);
    group.secrets[i].coin_share = coin.shares[i];
    pub->node_keys.push_back(group.secrets[i].signing_key.pub);
  }
  group.pub = std::move(pub);
  return group;
}

util::Bytes node_sign(const NodeSecret& secret, util::BytesView statement) {
  return crypto::rsa_sign_sha1(secret.signing_key, statement);
}

bool node_verify(const GroupPublic& pub, unsigned node, util::BytesView statement,
                 util::BytesView sig) {
  if (node >= pub.node_keys.size()) return false;
  return crypto::rsa_verify_sha1(pub.node_keys[node], statement, sig);
}

util::Bytes encode_group_public(const GroupPublic& pub) {
  util::Writer w;
  w.u32(pub.n);
  w.u32(pub.t);
  for (const auto& key : pub.node_keys) w.lp32(key.encode());
  w.lp32(pub.coin_key.encode());
  return std::move(w).take();
}

GroupPublic decode_group_public(util::BytesView b) {
  util::Reader r(b);
  GroupPublic pub;
  pub.n = r.u32();
  pub.t = r.u32();
  if (pub.n == 0 || pub.n > 1024 || pub.n < 3 * pub.t + 1) {
    throw util::ParseError("implausible group parameters");
  }
  for (unsigned i = 0; i < pub.n; ++i) {
    pub.node_keys.push_back(crypto::RsaPublicKey::decode(r.lp32()));
  }
  pub.coin_key = threshold::ThresholdPublicKey::decode(r.lp32());
  r.expect_done();
  return pub;
}

util::Bytes encode_node_secret(const NodeSecret& secret) {
  util::Writer w;
  w.u32(secret.id);
  w.lp32(secret.signing_key.pub.encode());
  w.lp16(secret.signing_key.d.to_bytes_be());
  w.lp16(secret.signing_key.p.to_bytes_be());
  w.lp16(secret.signing_key.q.to_bytes_be());
  w.lp32(secret.coin_share.encode());
  return std::move(w).take();
}

NodeSecret decode_node_secret(util::BytesView b) {
  util::Reader r(b);
  NodeSecret secret;
  secret.id = r.u32();
  secret.signing_key.pub = crypto::RsaPublicKey::decode(r.lp32());
  secret.signing_key.d = bn::BigInt::from_bytes_be(r.lp16());
  secret.signing_key.p = bn::BigInt::from_bytes_be(r.lp16());
  secret.signing_key.q = bn::BigInt::from_bytes_be(r.lp16());
  if (secret.signing_key.p * secret.signing_key.q != secret.signing_key.pub.n) {
    throw util::ParseError("inconsistent RSA key material");
  }
  secret.coin_share = threshold::KeyShare::decode(r.lp32());
  r.expect_done();
  return secret;
}

}  // namespace sdns::abcast
