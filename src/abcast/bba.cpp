#include "abcast/bba.hpp"

#include "util/log.hpp"

namespace sdns::abcast {

using util::Bytes;
using util::BytesView;
using util::Reader;
using util::Writer;

namespace {
constexpr std::uint32_t kMaxRounds = 256;  // safety valve; expected ~2-3
}

BinaryAgreement::BinaryAgreement(std::shared_ptr<const GroupPublic> pub, unsigned my_id,
                                 std::uint64_t instance, ThresholdCoin& coin,
                                 Callbacks callbacks)
    : pub_(std::move(pub)),
      my_id_(my_id),
      instance_(instance),
      coin_(coin),
      cb_(std::move(callbacks)) {}

bool BinaryAgreement::is_bba_message(BytesView msg) {
  return !msg.empty() && (msg[0] == kBval || msg[0] == kAux || msg[0] == kDecide);
}

std::optional<std::uint64_t> BinaryAgreement::peek_instance(BytesView msg) {
  if (msg.size() < 9) return std::nullopt;
  Reader r(msg);
  r.u8();
  return r.u64();
}

Bytes BinaryAgreement::frame(MsgType type, std::uint32_t round, bool bit) const {
  Writer w;
  w.u8(type);
  w.u64(instance_);
  w.u32(round);
  w.u8(bit ? 1 : 0);
  return std::move(w).take();
}

void BinaryAgreement::start(bool input) {
  if (started_) return;
  started_ = true;
  est_ = input;
  round_ = 0;
  broadcast_bval(0, est_);
}

void BinaryAgreement::broadcast_bval(std::uint32_t round, bool bit) {
  Round& r = rounds_[round];
  if (r.bval_sent[bit ? 1 : 0]) return;
  r.bval_sent[bit ? 1 : 0] = true;
  r.bval_from[bit ? 1 : 0].insert(my_id_);
  if (cb_.send_to_all) cb_.send_to_all(frame(kBval, round, bit));
  try_finish_round(round);
}

void BinaryAgreement::on_message(unsigned from, BytesView msg) {
  if (halted_ || from >= pub_->n) return;
  try {
    Reader reader(msg);
    const auto type = static_cast<MsgType>(reader.u8());
    const std::uint64_t instance = reader.u64();
    if (instance != instance_) return;
    const std::uint32_t round = reader.u32();
    const bool bit = reader.u8() != 0;
    reader.expect_done();
    if (cb_.charge_message) cb_.charge_message();
    if (round > kMaxRounds) return;

    switch (type) {
      case kBval: {
        Round& r = rounds_[round];
        if (!r.bval_from[bit ? 1 : 0].insert(from).second) return;
        if (r.bval_from[bit ? 1 : 0].size() >= static_cast<std::size_t>(pub_->t) + 1 &&
            started_) {
          broadcast_bval(round, bit);  // amplification
        }
        // Count after amplification: our own broadcast adds us to the sender
        // set, and with exactly n-t live nodes that self-vote is what closes
        // the 2t+1 quorum — a node that proposed the other bit would
        // otherwise withhold its AUX forever and wedge the round.
        const std::size_t count = r.bval_from[bit ? 1 : 0].size();
        if (count >= pub_->quorum() && !r.bin_values[bit ? 1 : 0]) {
          r.bin_values[bit ? 1 : 0] = true;
          if (!r.aux_sent && started_) {
            r.aux_sent = true;
            r.aux[my_id_] = bit;
            if (cb_.send_to_all) cb_.send_to_all(frame(kAux, round, bit));
          }
        }
        try_finish_round(round);
        break;
      }
      case kAux: {
        Round& r = rounds_[round];
        r.aux.emplace(from, bit);  // first aux from a sender counts
        try_finish_round(round);
        break;
      }
      case kDecide: {
        if (!decide_from_[bit ? 1 : 0].insert(from).second) return;
        if (decide_from_[bit ? 1 : 0].size() >= static_cast<std::size_t>(pub_->t) + 1) {
          decide(bit);  // t+1 senders include an honest decider
        }
        const std::size_t total =
            decide_from_[0].size() + decide_from_[1].size() + (decide_sent_ ? 1 : 0);
        if (decision_ && total >= pub_->quorum()) halted_ = true;
        break;
      }
      default:
        break;
    }
  } catch (const util::ParseError&) {
    SDNS_LOG_DEBUG("bba ", instance_, ": malformed message dropped");
  }
}

void BinaryAgreement::try_finish_round(std::uint32_t round) {
  if (!started_ || halted_ || round != round_) return;
  Round& r = rounds_[round];
  if (!r.aux_sent) {
    // Our aux goes out as soon as any value enters bin_values (handled in
    // the kBval branch); nothing to do before that.
    return;
  }
  // Collect aux messages whose value is already in bin_values.
  std::set<unsigned> senders;
  bool values[2] = {false, false};
  for (const auto& [from, bit] : r.aux) {
    if (r.bin_values[bit ? 1 : 0]) {
      senders.insert(from);
      values[bit ? 1 : 0] = true;
    }
  }
  if (senders.size() < pub_->quorum()) return;
  if (r.coin_requested) return;
  r.coin_requested = true;
  const bool v0 = values[0];
  const bool v1 = values[1];
  coin_.request(instance_, round, [this, round, v0, v1](bool c) {
    if (halted_ || round != round_) return;
    Round& rr = rounds_[round];
    rr.coin = c;
    if (v0 != v1) {
      const bool b = v1;  // the single value present
      est_ = b;
      if (b == c && !decision_) {
        decide(b);
      }
    } else {
      est_ = c;
    }
    advance(round + 1);
  });
}

void BinaryAgreement::rebroadcast() {
  if (!started_ || halted_ || !cb_.send_to_all) return;
  if (decide_sent_) {
    cb_.send_to_all(frame(kDecide, round_, *decision_));
    return;
  }
  Round& r = rounds_[round_];
  for (int b = 0; b < 2; ++b) {
    if (r.bval_sent[b]) cb_.send_to_all(frame(kBval, round_, b != 0));
  }
  auto own_aux = r.aux.find(my_id_);
  if (r.aux_sent && own_aux != r.aux.end()) {
    cb_.send_to_all(frame(kAux, round_, own_aux->second));
  }
  if (r.coin_requested && !r.coin) coin_.resend(instance_, round_);
}

void BinaryAgreement::advance(std::uint32_t round) {
  if (halted_) return;
  if (round > kMaxRounds) {
    SDNS_LOG_ERROR("bba ", instance_, ": round cap exceeded");
    return;
  }
  round_ = round;
  broadcast_bval(round, est_);
  // Late-arriving BVAL/AUX for this round may already satisfy the quorums.
  Round& r = rounds_[round];
  for (int b = 0; b < 2; ++b) {
    if (r.bval_from[b].size() >= static_cast<std::size_t>(pub_->t) + 1) {
      broadcast_bval(round, b != 0);
    }
    if (r.bval_from[b].size() >= pub_->quorum() && !r.bin_values[b]) {
      r.bin_values[b] = true;
      if (!r.aux_sent) {
        r.aux_sent = true;
        r.aux[my_id_] = b != 0;
        if (cb_.send_to_all) cb_.send_to_all(frame(kAux, round, b != 0));
      }
    }
  }
  try_finish_round(round);
}

void BinaryAgreement::decide(bool value) {
  if (decision_) return;
  decision_ = value;
  if (!decide_sent_) {
    decide_sent_ = true;
    if (cb_.send_to_all) cb_.send_to_all(frame(kDecide, round_, value));
  }
  if (cb_.on_decide) cb_.on_decide(value);
}

}  // namespace sdns::abcast
