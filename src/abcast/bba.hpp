// Asynchronous binary Byzantine agreement with a common coin.
//
// This is the randomized agreement primitive SINTRA's protocols rest on
// (Cachin-Kursawe-Shoup, PODC 2000): signature-free voting rounds in the
// style of Mostefaoui-Moumen-Raynal, with ties broken by the threshold-RSA
// common coin (coin.hpp).  It needs no timing assumptions — exactly the
// property the paper cites for preferring SINTRA over deterministic BFT —
// and terminates with probability 1 in an expected constant number of
// rounds.
//
// Guarantees with n >= 3t+1 and at most t Byzantine nodes:
//   Agreement:   no two honest nodes decide differently.
//   Validity:    the decision is some honest node's input.
//   Termination: every honest node decides with probability 1.
//
// The atomic broadcast layer uses one instance per epoch-abandonment vote.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "abcast/coin.hpp"

namespace sdns::abcast {

class BinaryAgreement {
 public:
  struct Callbacks {
    std::function<void(const util::Bytes&)> send_to_all;
    /// Fires exactly once with the decided bit.
    std::function<void(bool)> on_decide;
    /// Per-message processing cost hook; may be empty.
    std::function<void()> charge_message;
  };

  BinaryAgreement(std::shared_ptr<const GroupPublic> pub, unsigned my_id,
                  std::uint64_t instance, ThresholdCoin& coin, Callbacks callbacks);

  /// Join the agreement with the given proposal. Must be called once.
  void start(bool input);
  bool started() const { return started_; }

  void on_message(unsigned from, util::BytesView msg);

  /// Re-broadcast this node's outstanding messages: the decision if one was
  /// reached, otherwise the current round's BVAL/AUX votes and — if the round
  /// is blocked on the common coin — our coin share. Every frame is one-shot
  /// on first send; peers cut off by a crash or partition need this to catch
  /// up, or an agreement instance can stall below its quorums forever.
  /// Owners call it from a periodic retry timer. Idempotent at receivers.
  void rebroadcast();

  bool decided() const { return decision_.has_value(); }
  bool decision() const { return *decision_; }
  std::uint32_t rounds_used() const { return round_; }

  std::uint64_t instance() const { return instance_; }

  /// Dispatch helper: true for BVAL/AUX/DECIDE frames of any instance.
  static bool is_bba_message(util::BytesView msg);
  /// Extract the instance id (nullopt on malformed input).
  static std::optional<std::uint64_t> peek_instance(util::BytesView msg);

 private:
  enum MsgType : std::uint8_t { kBval = 0xB1, kAux = 0xB2, kDecide = 0xB3 };

  struct Round {
    std::set<unsigned> bval_from[2];   ///< senders per bit
    bool bval_sent[2] = {false, false};
    bool bin_values[2] = {false, false};
    std::map<unsigned, bool> aux;      ///< sender -> aux bit
    bool aux_sent = false;
    bool coin_requested = false;
    std::optional<bool> coin;
  };

  util::Bytes frame(MsgType type, std::uint32_t round, bool bit) const;
  void broadcast_bval(std::uint32_t round, bool bit);
  void advance(std::uint32_t round);
  void try_finish_round(std::uint32_t round);
  void decide(bool value);

  std::shared_ptr<const GroupPublic> pub_;
  unsigned my_id_;
  std::uint64_t instance_;
  ThresholdCoin& coin_;
  Callbacks cb_;

  bool started_ = false;
  bool halted_ = false;
  bool est_ = false;
  std::uint32_t round_ = 0;
  std::map<std::uint32_t, Round> rounds_;
  std::optional<bool> decision_;
  bool decide_sent_ = false;
  std::set<unsigned> decide_from_[2];
};

}  // namespace sdns::abcast
