#include "abcast/coin.hpp"

#include "crypto/sha256.hpp"
#include "util/log.hpp"

namespace sdns::abcast {

using util::Bytes;
using util::BytesView;
using util::Reader;
using util::Writer;

namespace {
constexpr std::uint8_t kCoinTag = 0xC0;
}

ThresholdCoin::ThresholdCoin(std::shared_ptr<const GroupPublic> pub, NodeSecret secret,
                             Callbacks callbacks, util::Rng rng)
    : pub_(std::move(pub)), ctx_(threshold::CryptoContext::get(pub_->coin_key)),
      secret_(std::move(secret)), cb_(std::move(callbacks)), rng_(rng) {}

bn::BigInt ThresholdCoin::coin_element(std::uint64_t instance, std::uint32_t round) const {
  Writer w;
  w.str("coin");
  w.u64(instance);
  w.u32(round);
  return threshold::hash_to_element(pub_->coin_key, w.bytes());
}

bool ThresholdCoin::is_coin_message(BytesView msg) {
  return !msg.empty() && msg[0] == kCoinTag;
}

void ThresholdCoin::request(std::uint64_t instance, std::uint32_t round,
                            std::function<void(bool)> done) {
  Slot& slot = slots_[{instance, round}];
  if (slot.value) {
    done(*slot.value);
    return;
  }
  slot.waiters.push_back(std::move(done));
  release_share(instance, round, slot);
  try_assemble(instance, round, slot);
}

void ThresholdCoin::release_share(std::uint64_t instance, std::uint32_t round, Slot& slot) {
  if (slot.released) return;
  slot.released = true;
  const bn::BigInt x = coin_element(instance, round);
  if (cb_.charge) {
    cb_.charge(threshold::CryptoOp::kShareValue);
    cb_.charge(threshold::CryptoOp::kProofGen);
  }
  auto share = threshold::generate_share(*ctx_, secret_.coin_share, x,
                                         /*with_proof=*/true, rng_);
  slot.shares.emplace(share.index, share);
  Writer w;
  w.u8(kCoinTag);
  w.u64(instance);
  w.u32(round);
  w.lp32(share.encode());
  slot.share_frame = std::move(w).take();
  if (cb_.send_to_all) cb_.send_to_all(slot.share_frame);
}

void ThresholdCoin::resend(std::uint64_t instance, std::uint32_t round) {
  auto it = slots_.find({instance, round});
  if (it == slots_.end()) return;
  Slot& slot = it->second;
  if (!slot.released || slot.value || slot.share_frame.empty()) return;
  if (cb_.send_to_all) cb_.send_to_all(slot.share_frame);
}

void ThresholdCoin::on_message(BytesView msg) {
  try {
    Reader r(msg);
    if (r.u8() != kCoinTag) return;
    const std::uint64_t instance = r.u64();
    const std::uint32_t round = r.u32();
    auto share = threshold::SignatureShare::decode(r.lp32());
    r.expect_done();
    Slot& slot = slots_[{instance, round}];
    if (slot.value || slot.shares.count(share.index)) return;
    const bn::BigInt x = coin_element(instance, round);
    if (cb_.charge) cb_.charge(threshold::CryptoOp::kProofVerify);
    if (!threshold::verify_share(*ctx_, x, share)) {
      SDNS_LOG_DEBUG("coin: invalid share from index ", share.index);
      return;
    }
    slot.shares.emplace(share.index, std::move(share));
    // A share from a peer implies the coin is wanted: release ours so the
    // group reaches t+1 even if we have not requested this coin yet.
    release_share(instance, round, slot);
    try_assemble(instance, round, slot);
  } catch (const util::ParseError&) {
    SDNS_LOG_DEBUG("coin: malformed message dropped");
  }
}

void ThresholdCoin::try_assemble(std::uint64_t instance, std::uint32_t round, Slot& slot) {
  if (slot.value) return;
  const std::size_t need = static_cast<std::size_t>(pub_->coin_key.t) + 1;
  if (slot.shares.size() < need) return;
  std::vector<threshold::SignatureShare> subset;
  for (const auto& [idx, s] : slot.shares) {
    subset.push_back(s);
    if (subset.size() == need) break;
  }
  const bn::BigInt x = coin_element(instance, round);
  if (cb_.charge) {
    cb_.charge(threshold::CryptoOp::kAssemble);
    cb_.charge(threshold::CryptoOp::kFinalVerify);
  }
  auto y = threshold::assemble(*ctx_, x, subset);
  if (!y || !threshold::verify_signature(*ctx_, x, *y)) {
    SDNS_LOG_WARN("coin: assembly failed despite verified shares");
    return;
  }
  const Bytes digest = crypto::Sha256::digest(y->to_bytes_be());
  slot.value = (digest.back() & 1) != 0;
  if (cb_.on_flip) cb_.on_flip();
  auto waiters = std::move(slot.waiters);
  slot.waiters.clear();
  for (auto& w : waiters) w(*slot.value);
}

}  // namespace sdns::abcast
