// EDNS0 (RFC 2671): the OPT pseudo-RR that lets a requestor advertise a UDP
// payload size larger than the classic 512-byte limit (RFC 1035 §4.2.1).
//
// Without EDNS0 every threshold-signed response — an RRset plus its SIG plus
// the additional-section signatures — blows through 512 bytes, truncates,
// and forces the client onto TCP. The OPT record abuses the fixed RR fields:
// CLASS carries the sender's UDP payload size, TTL packs
// (extended-rcode, version, DO bit + zeroes), and RDATA holds options we do
// not use. OPT lives in the additional section, is never cached or signed,
// and there can be at most one.
#pragma once

#include <optional>

#include "dns/message.hpp"

namespace sdns::dns {

/// The classic limit that applies when a query carries no OPT record.
constexpr std::size_t kClassicUdpLimit = 512;

/// Our default advertised receive size (the DNS-flag-day value, safely
/// below common MTUs once encapsulated).
constexpr std::uint16_t kDefaultEdnsPayload = 1232;

struct EdnsInfo {
  std::uint16_t udp_payload = kDefaultEdnsPayload;
  std::uint8_t extended_rcode = 0;  ///< high 8 bits of a 12-bit rcode
  std::uint8_t version = 0;
  bool dnssec_ok = false;  ///< the DO bit (RFC 3225)

  /// The OPT pseudo-record carrying this info (root owner, empty RDATA).
  ResourceRecord to_rr() const;
  static EdnsInfo from_rr(const ResourceRecord& rr);
};

/// The message's OPT record, if present (scans the additional section).
std::optional<EdnsInfo> find_edns(const Message& msg);

/// Add or replace the message's OPT record. Keeps OPT ahead of a trailing
/// TSIG record, which must stay last (tsig_sign/tsig_verify invariant).
void set_edns(Message& msg, const EdnsInfo& info);

/// Remove any OPT record from the additional section.
void strip_edns(Message& msg);

/// The UDP response budget a query grants its responder: the advertised
/// payload size when the query carries an OPT (floored at 512 — RFC 2671
/// treats smaller values as 512), else the classic 512-byte limit.
std::size_t effective_udp_payload(const Message& query);

/// Truncate `response` for a UDP path with `limit` bytes: if its encoding
/// exceeds the limit, drop all three record sections, set TC, and re-attach
/// the responder's OPT (if one was present) so the requestor still learns
/// our EDNS support while retrying over TCP. Returns true if truncated.
bool truncate_for_udp(Message& response, std::size_t limit);

}  // namespace sdns::dns
