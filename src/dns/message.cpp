#include "dns/message.hpp"

#include <map>
#include <sstream>

namespace sdns::dns {

using util::Bytes;
using util::BytesView;
using util::ParseError;
using util::Reader;
using util::Writer;

std::string to_string(Rcode rc) {
  switch (rc) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
    case Rcode::kYxDomain: return "YXDOMAIN";
    case Rcode::kYxRRset: return "YXRRSET";
    case Rcode::kNxRRset: return "NXRRSET";
    case Rcode::kNotAuth: return "NOTAUTH";
    case Rcode::kNotZone: return "NOTZONE";
  }
  return "RCODE" + std::to_string(static_cast<int>(rc));
}

bool operator==(const Question& a, const Question& b) {
  return a.name == b.name && a.type == b.type && a.klass == b.klass;
}

namespace {

/// Compressing name writer: remembers where each suffix was written and
/// emits a pointer when the same suffix recurs (RFC 1035 §4.1.4).
class NameCompressor {
 public:
  void write(Writer& w, const Name& name) {
    const std::size_t count = name.label_count();
    for (std::size_t skip = 0; skip < count; ++skip) {
      const Name suffix = name.parent(skip);
      const std::string key = suffix.canonical().to_string();
      auto it = offsets_.find(key);
      if (it != offsets_.end()) {
        w.u16(static_cast<std::uint16_t>(0xc000 | it->second));
        return;
      }
      if (w.size() < 0x3fff) offsets_.emplace(key, w.size());
      const std::string& label = name.label(skip);
      w.u8(static_cast<std::uint8_t>(label.size()));
      w.raw(reinterpret_cast<const std::uint8_t*>(label.data()), label.size());
    }
    w.u8(0);
  }

 private:
  std::map<std::string, std::size_t> offsets_;
};

Name read_name(Reader& r) {
  std::vector<std::string> labels;
  std::size_t jumps = 0;
  std::optional<std::size_t> resume;
  for (;;) {
    const std::uint8_t len = r.u8();
    if (len == 0) break;
    if ((len & 0xc0) == 0xc0) {
      const std::size_t target = static_cast<std::size_t>(len & 0x3f) << 8 | r.u8();
      if (++jumps > 64) throw ParseError("compression pointer loop");
      if (!resume) resume = r.pos();
      if (target >= r.pos()) throw ParseError("forward compression pointer");
      r.seek(target);
      continue;
    }
    if (len > 63) throw ParseError("bad label length");
    auto raw = r.raw(len);
    labels.emplace_back(raw.begin(), raw.end());
  }
  if (resume) r.seek(*resume);
  return Name::from_labels(std::move(labels));
}

void write_rr(Writer& w, NameCompressor& comp, const ResourceRecord& rr) {
  comp.write(w, rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(static_cast<std::uint16_t>(rr.klass));
  w.u32(rr.ttl);
  w.lp16(rr.rdata);  // rdata kept uncompressed (canonical-friendly)
}

ResourceRecord read_rr(Reader& r) {
  ResourceRecord rr;
  rr.name = read_name(r);
  rr.type = static_cast<RRType>(r.u16());
  rr.klass = static_cast<RRClass>(r.u16());
  rr.ttl = r.u32();
  const std::uint16_t rdlen = r.u16();
  const std::size_t rdata_start = r.pos();
  // Within RDATA, embedded names may themselves be compressed by other
  // implementations; we re-encode them uncompressed.
  switch (rr.type) {
    case RRType::kNS:
    case RRType::kCNAME:
    case RRType::kPTR: {
      const Name target = read_name(r);
      if (r.pos() != rdata_start + rdlen) throw ParseError("rdata length mismatch");
      rr.rdata = NameRdata{target}.encode();
      break;
    }
    case RRType::kSOA: {
      SoaRdata s;
      s.mname = read_name(r);
      s.rname = read_name(r);
      s.serial = r.u32();
      s.refresh = r.u32();
      s.retry = r.u32();
      s.expire = r.u32();
      s.minimum = r.u32();
      if (r.pos() != rdata_start + rdlen) throw ParseError("rdata length mismatch");
      rr.rdata = s.encode();
      break;
    }
    case RRType::kMX: {
      MxRdata m;
      m.preference = r.u16();
      m.exchange = read_name(r);
      if (r.pos() != rdata_start + rdlen) throw ParseError("rdata length mismatch");
      rr.rdata = m.encode();
      break;
    }
    default:
      rr.rdata = r.raw_copy(rdlen);
      break;
  }
  return rr;
}

}  // namespace

Bytes Message::encode() const {
  Writer w;
  w.u16(id);
  std::uint16_t flags = 0;
  if (qr) flags |= 0x8000;
  flags = static_cast<std::uint16_t>(
      flags | (static_cast<std::uint16_t>(opcode) & 0xf) << 11);
  if (aa) flags |= 0x0400;
  if (tc) flags |= 0x0200;
  if (rd) flags |= 0x0100;
  if (ra) flags |= 0x0080;
  flags = static_cast<std::uint16_t>(flags | (static_cast<std::uint16_t>(rcode) & 0xf));
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authority.size()));
  w.u16(static_cast<std::uint16_t>(additional.size()));
  NameCompressor comp;
  for (const auto& q : questions) {
    comp.write(w, q.name);
    w.u16(static_cast<std::uint16_t>(q.type));
    w.u16(static_cast<std::uint16_t>(q.klass));
  }
  for (const auto& rr : answers) write_rr(w, comp, rr);
  for (const auto& rr : authority) write_rr(w, comp, rr);
  for (const auto& rr : additional) write_rr(w, comp, rr);
  return std::move(w).take();
}

Message Message::decode(BytesView b) {
  Reader r(b);
  Message m;
  m.id = r.u16();
  const std::uint16_t flags = r.u16();
  m.qr = flags & 0x8000;
  m.opcode = static_cast<Opcode>((flags >> 11) & 0xf);
  m.aa = flags & 0x0400;
  m.tc = flags & 0x0200;
  m.rd = flags & 0x0100;
  m.ra = flags & 0x0080;
  m.rcode = static_cast<Rcode>(flags & 0xf);
  const std::uint16_t qd = r.u16();
  const std::uint16_t an = r.u16();
  const std::uint16_t ns = r.u16();
  const std::uint16_t ar = r.u16();
  for (std::uint16_t i = 0; i < qd; ++i) {
    Question q;
    q.name = read_name(r);
    q.type = static_cast<RRType>(r.u16());
    q.klass = static_cast<RRClass>(r.u16());
    m.questions.push_back(std::move(q));
  }
  for (std::uint16_t i = 0; i < an; ++i) m.answers.push_back(read_rr(r));
  for (std::uint16_t i = 0; i < ns; ++i) m.authority.push_back(read_rr(r));
  for (std::uint16_t i = 0; i < ar; ++i) m.additional.push_back(read_rr(r));
  r.expect_done();
  return m;
}

std::string Message::to_text() const {
  std::ostringstream os;
  os << ";; id " << id << " opcode "
     << (opcode == Opcode::kUpdate   ? "UPDATE"
         : opcode == Opcode::kNotify ? "NOTIFY"
                                     : "QUERY")
     << " rcode "
     << to_string(rcode) << (qr ? " qr" : "") << (aa ? " aa" : "") << "\n";
  os << ";; QUESTION (" << questions.size() << ")\n";
  for (const auto& q : questions) {
    os << q.name.to_string() << " " << to_string(q.klass) << " " << to_string(q.type)
       << "\n";
  }
  auto section = [&os](const char* title, const std::vector<ResourceRecord>& rrs) {
    os << ";; " << title << " (" << rrs.size() << ")\n";
    for (const auto& rr : rrs) os << rr.to_text() << "\n";
  };
  section("ANSWER", answers);
  section("AUTHORITY", authority);
  section("ADDITIONAL", additional);
  return os.str();
}

Message Message::make_query(std::uint16_t id, const Name& name, RRType type) {
  Message m;
  m.id = id;
  m.rd = false;
  m.questions.push_back({name, type, RRClass::kIN});
  return m;
}

std::size_t question_section_span(util::BytesView wire) {
  if (wire.size() < 12) throw util::ParseError("message shorter than header");
  const std::size_t qdcount = static_cast<std::size_t>(wire[4]) << 8 | wire[5];
  std::size_t at = 12;
  for (std::size_t q = 0; q < qdcount; ++q) {
    for (;;) {
      if (at >= wire.size()) throw util::ParseError("truncated question name");
      const std::uint8_t len = wire[at];
      if ((len & 0xC0) == 0xC0) {  // compression pointer ends the name
        at += 2;
        break;
      }
      if (len & 0xC0) throw util::ParseError("bad label length in question");
      at += 1 + len;
      if (len == 0) break;
    }
    at += 4;  // qtype + qclass
    if (at > wire.size()) throw util::ParseError("truncated question");
  }
  return at - 12;
}

Message Message::make_response(const Message& request) {
  Message m;
  m.id = request.id;
  m.qr = true;
  m.opcode = request.opcode;
  m.rd = request.rd;
  m.questions = request.questions;
  return m;
}

}  // namespace sdns::dns
