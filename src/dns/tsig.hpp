// Transaction signatures (the paper's client/server authentication).
//
// DNSSEC transaction signatures let a client and server authenticate
// requests and responses with a shared secret (HMAC).  The paper requires
// every write request to be "authorized by a transaction signature of the
// client" (§3.3).  This is a simplified TSIG: an HMAC-SHA1 record appended
// as the last record of the additional section, computed over the message
// encoded *without* that record, the key name, and a timestamp.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "dns/message.hpp"

namespace sdns::dns {

struct TsigKey {
  std::string name;
  util::Bytes secret;
};

/// Append a TSIG record to `msg` (must be the final mutation before encode).
void tsig_sign(Message& msg, const TsigKey& key, std::uint64_t timestamp);

enum class TsigStatus {
  kOk,
  kMissing,     ///< no TSIG record present
  kUnknownKey,  ///< key name not recognized by the verifier
  kBadMac,      ///< signature check failed
  kBadTime,     ///< valid MAC but timestamp outside the fudge window
};

struct TsigVerifyOptions {
  /// The verifier's clock (seconds, same epoch as the signer's timestamps).
  /// Empty disables the freshness check entirely — the simulator's
  /// deterministic tests sign with logical timestamps that have no wall
  /// clock to compare against.
  std::function<std::uint64_t()> now;
  /// Maximum |now - timestamp| accepted, RFC 2845 §4.5.2 style ("fudge").
  std::uint64_t fudge = 300;
};

/// Verify and strip the trailing TSIG record. `lookup` maps a key name to
/// its secret (return nullopt for unknown keys). The MAC is checked before
/// the timestamp (RFC 2845 §4.5: time is only trustworthy once the
/// signature is), so a replayed-but-stale message yields kBadTime, and a
/// forged one kBadMac. On kOk the TSIG record has been removed from `msg`
/// and `key_name_out` (if given) holds the signer.
TsigStatus tsig_verify(
    Message& msg,
    const std::function<std::optional<util::Bytes>(const std::string&)>& lookup,
    const TsigVerifyOptions& options, std::string* key_name_out = nullptr);

/// Verify without a freshness check (logical-time tests and callers that
/// enforce replay protection elsewhere).
TsigStatus tsig_verify(
    Message& msg,
    const std::function<std::optional<util::Bytes>(const std::string&)>& lookup,
    std::string* key_name_out = nullptr);

}  // namespace sdns::dns
