// DNSSEC zone signing (RFC 2535 era, as the paper uses it).
//
// A signed zone carries a KEY record at its apex with the zone's RSA public
// key and, for every RRset, a SIG record computed over the canonical form of
// the RRset.  The paper's contribution is *who* computes these signatures:
// instead of one server holding sk_zone, the signature is produced by the
// threshold protocol.  To support that, signing is split into two steps:
//
//   SigTask task = make_sig_task(rrset, ...);   // what must be signed
//   ... obtain `sig` over task.data somehow ... // locally or via threshold
//   ResourceRecord rr = finish_sig_task(task, sig);
//
// A synchronous convenience path (sign_rrset / ZoneSigner) covers local keys
// and the initial zone-signing command of §4.3.
#pragma once

#include <functional>

#include "crypto/rsa.hpp"
#include "dns/rr.hpp"
#include "dns/zone.hpp"

namespace sdns::dns {

/// RFC 2535 §4.1.6 key tag (checksum-style identifier of the zone key).
std::uint16_t key_tag(const KeyRdata& key);

/// Build the apex KEY record for an RSA public key.
ResourceRecord make_zone_key_record(const Name& zone, std::uint32_t ttl,
                                    const crypto::RsaPublicKey& pub);

/// Extract the RSA public key from a KEY record.
crypto::RsaPublicKey zone_key_from_record(const KeyRdata& key);

/// A pending signature: the SIG RDATA fields and the exact bytes to sign.
struct SigTask {
  Name owner;           ///< where the SIG record will live
  std::uint32_t ttl = 0;
  SigRdata sig;         ///< all fields filled except `signature`
  util::Bytes data;     ///< presignature prefix || canonical RRset

  friend bool operator==(const SigTask& a, const SigTask& b) {
    return a.owner == b.owner && a.data == b.data;
  }
};

/// Prepare the signing task for an RRset (RFC 2535 §4.1.8 data layout:
/// SIG RDATA sans signature, then each RR in canonical form sorted by RDATA).
SigTask make_sig_task(const RRset& rrset, const Name& signer, std::uint16_t tag,
                      std::uint32_t inception, std::uint32_t expiration);

/// Attach the signature bytes, yielding the complete SIG record.
ResourceRecord finish_sig_task(const SigTask& task, util::Bytes signature);

/// Verify a SIG record over an RRset with the zone key.
bool verify_rrset_sig(const RRset& rrset, const SigRdata& sig,
                      const crypto::RsaPublicKey& pub);

/// Raw-signing callback: given the exact data bytes, return signature bytes.
using SignFn = std::function<util::Bytes(util::BytesView data)>;

/// Synchronous one-RRset signing.
ResourceRecord sign_rrset(const RRset& rrset, const Name& signer, std::uint16_t tag,
                          std::uint32_t inception, std::uint32_t expiration,
                          const SignFn& sign);

/// Sign an entire zone in place: installs the apex KEY record, rebuilds the
/// NXT chain, and writes a SIG for every RRset (except SIGs themselves).
/// Returns the number of signatures computed. This is the paper's §4.3
/// "special command ... to sign the zone data using the distributed key";
/// with a threshold `sign` callback the private key never materializes.
std::size_t sign_zone(Zone& zone, const crypto::RsaPublicKey& pub, std::uint32_t inception,
                      std::uint32_t expiration, const SignFn& sign);

/// Whole-zone verification: every non-SIG RRset must carry a verifying SIG
/// under the apex KEY, and the NXT chain must be closed and consistent.
struct ZoneVerifyResult {
  bool ok = false;
  std::size_t verified = 0;
  std::string first_error;  ///< empty when ok
};
ZoneVerifyResult verify_zone(const Zone& zone);

}  // namespace sdns::dns
