// The authoritative name server engine — our stand-in for BIND's `named`.
//
// Handles queries against one zone (answers, CNAME chasing, NXDOMAIN with
// NXT-based authenticated denial, additional-section processing) and applies
// RFC 2136 dynamic updates (prerequisite checks, add/delete semantics, SOA
// serial maintenance).
//
// Updates in a *signed* zone do not synchronously produce signatures:
// apply_update() mutates the zone data, rebuilds the NXT chain, and returns
// the list of SigTasks that must be completed (by a local key or by the
// threshold protocol) before the update is fully committed.  This split is
// exactly the hook the paper's Wrapper uses: "The signature routine of named
// has been modified so that it forwards the request ... to the local
// Wrapper" (§4.2).
#pragma once

#include <deque>
#include <map>
#include <optional>

#include "dns/dnssec.hpp"
#include "dns/message.hpp"
#include "dns/tsig.hpp"
#include "dns/zone.hpp"

namespace sdns::dns {

struct UpdatePolicy {
  /// Require a valid transaction signature on updates.
  bool require_tsig = false;
  /// Shared secrets for TSIG verification.
  std::vector<TsigKey> keys;
  /// Clock for the TSIG freshness check (empty = logical time only, no
  /// check — the deterministic simulator has no wall clock). The deployed
  /// runtime injects time(2) so captured updates stop replaying.
  std::function<std::uint64_t()> tsig_clock;
  /// RFC 2845-style fudge window, seconds.
  std::uint64_t tsig_fudge = 300;
};

struct UpdateResult {
  Rcode rcode = Rcode::kNoError;
  /// Signatures that must be produced to complete the update (signed zones
  /// only; empty on failure or unsigned zones). Ordered canonically so every
  /// replica derives the identical list.
  std::vector<SigTask> sig_tasks;
  /// Owner names whose data changed (diagnostics / tests).
  std::vector<Name> changed_names;
};

class AuthoritativeServer {
 public:
  /// `signature_validity` is how long produced SIGs live (seconds).
  AuthoritativeServer(Zone zone, UpdatePolicy policy = {},
                      std::uint32_t signature_validity = 30 * 24 * 3600);

  Zone& zone() { return zone_; }
  const Zone& zone() const { return zone_; }

  /// True once the zone carries an apex KEY record.
  bool zone_is_signed() const;

  /// Answer a standard query (including AXFR at the apex and wildcard
  /// synthesis). Never mutates the zone. When `max_udp_size` is nonzero and
  /// the encoded response would exceed it, the answer sections are dropped
  /// and the TC bit set (RFC 1035 §4.1.1), telling the client to retry over
  /// a transport without the limit.
  Message answer_query(const Message& query, std::size_t max_udp_size = 0) const;

  /// Answer an AXFR/IXFR query as an RFC 5936 envelope stream: each returned
  /// Message encodes below `max_wire` bytes (so a large zone fits the 64 KiB
  /// TCP length prefix one message at a time). `max_wire == 0` keeps the
  /// legacy single-message form — what answer_query produces in-process.
  /// IXFR serves journal diffs when the client's serial is still covered,
  /// otherwise falls back to an AXFR-format response (`used_axfr` reports
  /// which format went out). Validation failures (wrong opcode, non-apex
  /// qname, non-XFR qtype) come back as a single error-rcode message.
  std::vector<Message> answer_xfr(const Message& query, std::size_t max_wire,
                                  bool* used_axfr = nullptr) const;

  /// Apply an RFC 2136 dynamic update at logical time `now` (drives SIG
  /// inception). TSIG is checked per policy. The zone is mutated on success;
  /// on failure (bad prerequisite etc.) it is left untouched.
  UpdateResult apply_update(const Message& update, std::uint32_t now);

  /// Install one completed signature produced for a SigTask.
  void install_signature(const SigTask& task, util::Bytes signature_bytes);

  /// Build the (possibly failing) update response message.
  static Message update_response(const Message& update, Rcode rcode);

  // ---- update journal (feeds IXFR, RFC 1995) ----
  /// One committed update's effect on the zone.
  struct JournalEntry {
    ResourceRecord soa_before;
    ResourceRecord soa_after;
    std::vector<ResourceRecord> removed;  ///< excluding the SOA itself
    std::vector<ResourceRecord> added;
  };
  /// Keep at most this many entries (older serials fall back to AXFR).
  void set_journal_limit(std::size_t limit) { journal_limit_ = limit; }
  const std::deque<JournalEntry>& journal() const { return journal_; }
  /// Commit the pending journal capture. apply_update() calls this itself
  /// when an update needs no signatures; otherwise the caller finalizes
  /// after installing the last SIG so the diff includes the new signatures.
  void finalize_journal();

 private:
  void answer_axfr(Message& response) const;
  void answer_ixfr(Message& response, const Message& query,
                   bool* used_axfr = nullptr) const;
  /// The wildcard owner covering `qname`, if any ("*." + closest encloser).
  std::optional<Name> wildcard_for(const Name& qname) const;
  void add_denial(Message& response, const Name& qname) const;
  void add_rrset_with_sigs(Message& response, std::vector<ResourceRecord>& section,
                           const RRset& rrset) const;
  void add_additionals(Message& response) const;

  Zone zone_;
  UpdatePolicy policy_;
  std::uint32_t signature_validity_;

  // Journal state.
  std::deque<JournalEntry> journal_;
  std::size_t journal_limit_ = 64;
  /// Snapshot taken at the start of a mutating update, keyed for diffing.
  std::optional<std::map<std::string, ResourceRecord>> capture_;
  static std::map<std::string, ResourceRecord> snapshot_records(const Zone& zone);
};

}  // namespace sdns::dns
