#include "dns/edns.hpp"

#include <algorithm>

namespace sdns::dns {

ResourceRecord EdnsInfo::to_rr() const {
  ResourceRecord rr;
  rr.name = Name();  // root owner
  rr.type = RRType::kOPT;
  rr.klass = static_cast<RRClass>(udp_payload);
  rr.ttl = static_cast<std::uint32_t>(extended_rcode) << 24 |
           static_cast<std::uint32_t>(version) << 16 | (dnssec_ok ? 0x8000u : 0u);
  return rr;
}

EdnsInfo EdnsInfo::from_rr(const ResourceRecord& rr) {
  EdnsInfo info;
  info.udp_payload = static_cast<std::uint16_t>(rr.klass);
  info.extended_rcode = static_cast<std::uint8_t>(rr.ttl >> 24);
  info.version = static_cast<std::uint8_t>(rr.ttl >> 16);
  info.dnssec_ok = (rr.ttl & 0x8000u) != 0;
  return info;
}

std::optional<EdnsInfo> find_edns(const Message& msg) {
  for (const auto& rr : msg.additional) {
    if (rr.type == RRType::kOPT) return EdnsInfo::from_rr(rr);
  }
  return std::nullopt;
}

void set_edns(Message& msg, const EdnsInfo& info) {
  strip_edns(msg);
  // TSIG must remain the final record of the additional section.
  auto pos = msg.additional.end();
  if (!msg.additional.empty() && msg.additional.back().type == RRType::kTSIG) {
    pos = msg.additional.end() - 1;
  }
  msg.additional.insert(pos, info.to_rr());
}

void strip_edns(Message& msg) {
  msg.additional.erase(
      std::remove_if(msg.additional.begin(), msg.additional.end(),
                     [](const ResourceRecord& rr) { return rr.type == RRType::kOPT; }),
      msg.additional.end());
}

std::size_t effective_udp_payload(const Message& query) {
  const auto edns = find_edns(query);
  if (!edns) return kClassicUdpLimit;
  return std::max<std::size_t>(kClassicUdpLimit, edns->udp_payload);
}

bool truncate_for_udp(Message& response, std::size_t limit) {
  if (!limit || response.encode().size() <= limit) return false;
  const auto edns = find_edns(response);
  response.answers.clear();
  response.authority.clear();
  response.additional.clear();
  response.tc = true;
  if (edns) set_edns(response, *edns);
  return true;
}

}  // namespace sdns::dns
