#include "dns/name.hpp"

#include <algorithm>
#include <cctype>

namespace sdns::dns {

namespace {

char fold(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool label_equal(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (fold(a[i]) != fold(b[i])) return false;
  }
  return true;
}

int label_compare(const std::string& a, const std::string& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char ca = static_cast<unsigned char>(fold(a[i]));
    const unsigned char cb = static_cast<unsigned char>(fold(b[i]));
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 255;

}  // namespace

Name Name::parse(std::string_view text) {
  if (text.empty()) throw util::ParseError("empty domain name");
  if (text == ".") return Name();
  std::vector<std::string> labels;
  std::string current;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\') {
      // Escapes: \. literal dot, \\ backslash, \DDD decimal octet.
      if (i + 1 >= text.size()) throw util::ParseError("dangling escape in name");
      const char next = text[i + 1];
      if (next >= '0' && next <= '9') {
        if (i + 3 >= text.size()) throw util::ParseError("short decimal escape");
        int v = 0;
        for (int d = 1; d <= 3; ++d) {
          const char dc = text[i + d];
          if (dc < '0' || dc > '9') throw util::ParseError("bad decimal escape");
          v = v * 10 + (dc - '0');
        }
        if (v > 255) throw util::ParseError("decimal escape out of range");
        current.push_back(static_cast<char>(v));
        i += 3;
      } else {
        current.push_back(next);
        ++i;
      }
      continue;
    }
    if (c == '.') {
      if (current.empty()) throw util::ParseError("empty label in name");
      labels.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) labels.push_back(std::move(current));
  return from_labels(std::move(labels));
}

Name Name::from_labels(std::vector<std::string> labels) {
  Name n;
  std::size_t total = 1;
  for (const auto& l : labels) {
    if (l.empty()) throw util::ParseError("empty label");
    if (l.size() > kMaxLabel) throw util::ParseError("label exceeds 63 octets");
    total += 1 + l.size();
  }
  if (total > kMaxName) throw util::ParseError("name exceeds 255 octets");
  n.labels_ = std::move(labels);
  return n;
}

Name Name::from_wire(util::Reader& r) {
  const util::BytesView whole = r.whole();
  const std::size_t start = r.pos();
  // Pass 1: find the root byte and count labels without allocating.
  std::size_t pos = start;
  std::size_t count = 0;
  for (;;) {
    if (pos >= whole.size()) throw util::ParseError("truncated wire name");
    const std::uint8_t len = whole[pos++];
    if (len == 0) break;
    if (len > kMaxLabel) throw util::ParseError("label exceeds 63 octets");
    pos += len;
    ++count;
  }
  if (pos > whole.size()) throw util::ParseError("truncated wire name");
  if (pos - start > kMaxName) throw util::ParseError("name exceeds 255 octets");
  // Pass 2: build with exactly one vector allocation (labels are SSO-sized
  // in the common case, so this is typically the only heap touch).
  Name n;
  n.labels_.reserve(count);
  std::size_t p = start;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t len = whole[p++];
    n.labels_.emplace_back(reinterpret_cast<const char*>(whole.data() + p), len);
    p += len;
  }
  r.seek(pos);
  return n;
}

std::size_t Name::wire_length() const {
  std::size_t total = 1;
  for (const auto& l : labels_) total += 1 + l.size();
  return total;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& l : labels_) {
    for (char c : l) {
      if (c == '.' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x21 ||
                 static_cast<unsigned char>(c) > 0x7e) {
        out.push_back('\\');
        out.push_back(static_cast<char>('0' + (static_cast<unsigned char>(c) / 100)));
        out.push_back(static_cast<char>('0' + (static_cast<unsigned char>(c) / 10) % 10));
        out.push_back(static_cast<char>('0' + static_cast<unsigned char>(c) % 10));
      } else {
        out.push_back(c);
      }
    }
    out.push_back('.');
  }
  return out;
}

bool Name::is_subdomain_of(const Name& zone) const {
  if (zone.labels_.size() > labels_.size()) return false;
  for (std::size_t i = 0; i < zone.labels_.size(); ++i) {
    const auto& mine = labels_[labels_.size() - 1 - i];
    const auto& theirs = zone.labels_[zone.labels_.size() - 1 - i];
    if (!label_equal(mine, theirs)) return false;
  }
  return true;
}

Name Name::parent(std::size_t n) const {
  Name out;
  if (n >= labels_.size()) return out;
  out.labels_.assign(labels_.begin() + static_cast<std::ptrdiff_t>(n), labels_.end());
  return out;
}

Name Name::child(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return from_labels(std::move(labels));
}

Name Name::canonical() const {
  Name out = *this;
  for (auto& l : out.labels_) {
    std::transform(l.begin(), l.end(), l.begin(), fold);
  }
  return out;
}

void Name::append_canonical_key(std::string& out) const {
  for (const auto& l : labels_) {
    out.push_back(static_cast<char>(l.size()));
    for (char c : l) out.push_back(fold(c));
  }
  out.push_back('\0');
}

bool operator==(const Name& a, const Name& b) {
  if (a.labels_.size() != b.labels_.size()) return false;
  for (std::size_t i = 0; i < a.labels_.size(); ++i) {
    if (!label_equal(a.labels_[i], b.labels_[i])) return false;
  }
  return true;
}

int Name::canonical_compare(const Name& a, const Name& b) {
  const std::size_t na = a.labels_.size();
  const std::size_t nb = b.labels_.size();
  const std::size_t n = std::min(na, nb);
  for (std::size_t i = 1; i <= n; ++i) {
    const int c = label_compare(a.labels_[na - i], b.labels_[nb - i]);
    if (c != 0) return c;
  }
  if (na != nb) return na < nb ? -1 : 1;
  return 0;
}

void Name::to_wire(util::Writer& w) const {
  for (const auto& l : labels_) {
    w.u8(static_cast<std::uint8_t>(l.size()));
    w.raw(reinterpret_cast<const std::uint8_t*>(l.data()), l.size());
  }
  w.u8(0);
}

}  // namespace sdns::dns
