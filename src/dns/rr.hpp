// Resource records (RFC 1035) and the 2004-era DNSSEC record types the paper
// relies on: KEY (RFC 2535 zone keys), SIG (signatures over RRsets), and NXT
// (authenticated denial chain).
//
// A ResourceRecord stores its RDATA as *uncompressed* wire bytes; typed
// structs (SoaRdata, SigRdata, ...) convert to and from those bytes.  This
// mirrors how the records travel and keeps the canonical (signing) form
// trivially available.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "util/bytes.hpp"

namespace sdns::dns {

enum class RRType : std::uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kSIG = 24,
  kKEY = 25,
  kAAAA = 28,
  kNXT = 30,
  kOPT = 41,    // EDNS0 pseudo-RR (RFC 2671)
  kTSIG = 250,  // transaction signature meta-record
  kIXFR = 251,  // incremental zone transfer pseudo-type
  kAXFR = 252,  // whole-zone transfer pseudo-type
  kANY = 255,
};

enum class RRClass : std::uint16_t {
  kIN = 1,
  kCH = 3,      // CHAOS — BIND-style server introspection (stats.sdns. CH TXT)
  kNONE = 254,  // RFC 2136 "delete specific RR"
  kANY = 255,   // RFC 2136 "delete RRset"
};

std::string to_string(RRType t);
std::string to_string(RRClass c);
/// Parse "A", "SOA", "TYPE123"... Throws util::ParseError on unknown input.
RRType rrtype_from_string(std::string_view s);

struct ResourceRecord {
  Name name;
  RRType type = RRType::kA;
  RRClass klass = RRClass::kIN;
  std::uint32_t ttl = 0;
  util::Bytes rdata;  ///< uncompressed wire form

  /// Full uncompressed wire form (owner, type, class, ttl, rdlength, rdata).
  void to_wire(util::Writer& w) const;

  /// Canonical form for DNSSEC digests: owner name case-folded, TTL as given.
  void to_canonical_wire(util::Writer& w) const;

  /// One-line presentation form ("name ttl class type rdata").
  std::string to_text() const;

  friend bool operator==(const ResourceRecord& a, const ResourceRecord& b);
};

/// A set of records sharing (name, type, class); the unit DNSSEC signs.
struct RRset {
  Name name;
  RRType type = RRType::kA;
  std::uint32_t ttl = 0;
  std::vector<util::Bytes> rdatas;

  bool empty() const { return rdatas.empty(); }
  std::vector<ResourceRecord> to_records() const;
};

// ---- typed RDATA ----------------------------------------------------------

struct ARdata {
  std::array<std::uint8_t, 4> address{};

  util::Bytes encode() const;
  static ARdata decode(util::BytesView b);
  static ARdata from_text(std::string_view dotted_quad);
  std::string to_text() const;
};

struct AaaaRdata {
  std::array<std::uint8_t, 16> address{};

  util::Bytes encode() const;
  static AaaaRdata decode(util::BytesView b);
  static AaaaRdata from_text(std::string_view colon_hex);
  std::string to_text() const;
};

/// Shared shape for NS / CNAME / PTR: a single domain name.
struct NameRdata {
  Name target;

  util::Bytes encode() const;
  static NameRdata decode(util::BytesView b);
  std::string to_text() const { return target.to_string(); }
};

struct SoaRdata {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 3600;
  std::uint32_t retry = 600;
  std::uint32_t expire = 86400;
  std::uint32_t minimum = 300;

  util::Bytes encode() const;
  static SoaRdata decode(util::BytesView b);
  std::string to_text() const;
};

struct MxRdata {
  std::uint16_t preference = 0;
  Name exchange;

  util::Bytes encode() const;
  static MxRdata decode(util::BytesView b);
  std::string to_text() const;
};

struct TxtRdata {
  std::vector<std::string> strings;

  util::Bytes encode() const;
  static TxtRdata decode(util::BytesView b);
  std::string to_text() const;
};

/// RFC 2535 KEY record carrying the zone's public key.
struct KeyRdata {
  std::uint16_t flags = 0x0100;  // zone key
  std::uint8_t protocol = 3;     // DNSSEC
  std::uint8_t algorithm = 5;    // RSA/SHA-1
  util::Bytes public_key;        // opaque key material (our RSA encoding)

  util::Bytes encode() const;
  static KeyRdata decode(util::BytesView b);
  std::string to_text() const;
};

/// RFC 2535 SIG record: a signature over one RRset.
struct SigRdata {
  RRType type_covered = RRType::kA;
  std::uint8_t algorithm = 5;  // RSA/SHA-1
  std::uint8_t labels = 0;
  std::uint32_t original_ttl = 0;
  std::uint32_t expiration = 0;  // absolute seconds
  std::uint32_t inception = 0;
  std::uint16_t key_tag = 0;
  Name signer;
  util::Bytes signature;

  util::Bytes encode() const;
  static SigRdata decode(util::BytesView b);
  std::string to_text() const;

  /// The RDATA prefix (everything before the signature), which is included
  /// in the data being signed (RFC 2535 §4.1.8).
  util::Bytes presignature_prefix() const;
};

/// RFC 2535 NXT record: next owner name in canonical order plus a bitmap of
/// the types present at this owner. Provides authenticated denial.
struct NxtRdata {
  Name next;
  std::vector<RRType> types;  ///< types <= 127 only, sorted ascending

  util::Bytes encode() const;
  static NxtRdata decode(util::BytesView b);
  std::string to_text() const;
  bool has_type(RRType t) const;
};

/// Simplified transaction-signature record (the paper's TSIG-style client
/// authentication). Carried last in the additional section, never signed.
struct TsigRdata {
  std::string key_name;
  std::uint64_t timestamp = 0;
  util::Bytes mac;

  util::Bytes encode() const;
  static TsigRdata decode(util::BytesView b);
  std::string to_text() const;
};

/// Render any known rdata type to presentation text (hex for unknown types).
std::string rdata_to_text(RRType type, util::BytesView rdata);

/// Parse presentation text into rdata wire bytes for the given type.
/// Throws util::ParseError for unsupported types or malformed text.
util::Bytes rdata_from_text(RRType type, std::string_view text);

}  // namespace sdns::dns
