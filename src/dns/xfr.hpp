// Zone transfer helpers: RFC 1982 serial arithmetic and client-side
// application of AXFR / IXFR responses.
//
// The server side lives in AuthoritativeServer (answer_query handles the
// AXFR and IXFR pseudo-types; a bounded journal of per-update diffs feeds
// IXFR). These helpers let a secondary — or a recovering replica — bring a
// stale zone copy up to date from a transfer response.
#pragma once

#include "dns/message.hpp"
#include "dns/zone.hpp"

namespace sdns::dns {

/// RFC 1982 serial-number comparison for 32-bit DNS serials:
/// -1 if a < b, +1 if a > b, 0 if equal or incomparable (distance 2^31).
int serial_compare(std::uint32_t a, std::uint32_t b);

/// Build an IXFR query: question (zone, IXFR), authority carrying the
/// client's current SOA (whose serial tells the server where to diff from).
Message make_ixfr_query(std::uint16_t id, const Name& zone, const SoaRdata& current_soa);

enum class XfrOutcome {
  kUpToDate,    ///< single-SOA response: nothing to do
  kAppliedIxfr, ///< incremental diffs applied
  kReplacedAxfr,///< full zone replaced
  kMalformed,   ///< response did not follow the transfer format
};

/// Apply a transfer response (from answer_query on AXFR/IXFR) to `zone`.
XfrOutcome apply_xfr_response(Zone& zone, const Message& response);

}  // namespace sdns::dns
