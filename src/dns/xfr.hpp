// Zone transfer helpers: RFC 1982 serial arithmetic and client-side
// application of AXFR / IXFR responses.
//
// The server side lives in AuthoritativeServer (answer_query handles the
// AXFR and IXFR pseudo-types; a bounded journal of per-update diffs feeds
// IXFR). These helpers let a secondary — or a recovering replica — bring a
// stale zone copy up to date from a transfer response.
#pragma once

#include "dns/message.hpp"
#include "dns/zone.hpp"

namespace sdns::dns {

/// RFC 1982 serial-number comparison for 32-bit DNS serials:
/// -1 if a < b, +1 if a > b, 0 if equal or incomparable (distance 2^31).
int serial_compare(std::uint32_t a, std::uint32_t b);

/// Build an IXFR query: question (zone, IXFR), authority carrying the
/// client's current SOA (whose serial tells the server where to diff from).
Message make_ixfr_query(std::uint16_t id, const Name& zone, const SoaRdata& current_soa);

/// Build an RFC 1996 NOTIFY message: opcode NOTIFY, question (zone, SOA),
/// and — when given — the current SOA in the answer section as the serial
/// hint §3.7 allows.
Message make_notify(std::uint16_t id, const Name& zone,
                    const ResourceRecord* current_soa = nullptr);

enum class XfrOutcome {
  kUpToDate,    ///< single-SOA response: nothing to do
  kAppliedIxfr, ///< incremental diffs applied
  kReplacedAxfr,///< full zone replaced
  kMalformed,   ///< response did not follow the transfer format
};

/// Apply a transfer response (from answer_query on AXFR/IXFR) to `zone`.
XfrOutcome apply_xfr_response(Zone& zone, const Message& response);

/// Reassembles an RFC 5936 / RFC 1995 multi-message transfer stream (what
/// AuthoritativeServer::answer_xfr emits) back into the single logical
/// Message apply_xfr_response consumes. Feed envelopes in arrival order;
/// stop at kDone or kMalformed. Completion is detected structurally: AXFR
/// ends at the trailing SOA, IXFR when the diff walk closes back on the
/// target serial, and a lone leading SOA means already up to date.
class XfrAssembler {
 public:
  enum class State { kContinue, kDone, kMalformed };

  State feed(const Message& envelope);
  State state() const { return state_; }

  /// The reassembled logical transfer (meaningful once state() == kDone).
  const Message& combined() const { return combined_; }

 private:
  enum class Mode { kUnknown, kAxfr, kIxfrDeletions, kIxfrAdditions };
  State step(const ResourceRecord& rr);

  State state_ = State::kContinue;
  Mode mode_ = Mode::kUnknown;
  Message combined_;
  std::uint32_t target_serial_ = 0;
  std::size_t records_seen_ = 0;
};

}  // namespace sdns::dns
