// DNS messages (RFC 1035 §4) with name compression.
//
// One Message type serves queries, responses, and RFC 2136 dynamic updates
// (where the four sections are reinterpreted as Zone / Prerequisite / Update
// / Additional). Encoding compresses owner names; decoding follows
// compression pointers with loop protection.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dns/rr.hpp"

namespace sdns::dns {

enum class Opcode : std::uint8_t {
  kQuery = 0,
  kNotify = 4,  // RFC 1996 zone-change notification
  kUpdate = 5,
};

enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
  kYxDomain = 6,   // RFC 2136: name exists when it should not
  kYxRRset = 7,    // RFC 2136: RRset exists when it should not
  kNxRRset = 8,    // RFC 2136: RRset does not exist when it should
  kNotAuth = 9,
  kNotZone = 10,
};

std::string to_string(Rcode rc);

struct Question {
  Name name;
  RRType type = RRType::kA;
  RRClass klass = RRClass::kIN;

  friend bool operator==(const Question& a, const Question& b);
};

struct Message {
  std::uint16_t id = 0;
  bool qr = false;  ///< response flag
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  ///< authoritative answer
  bool tc = false;  ///< truncated
  bool rd = false;  ///< recursion desired
  bool ra = false;  ///< recursion available
  Rcode rcode = Rcode::kNoError;

  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;     ///< update: prerequisites
  std::vector<ResourceRecord> authority;   ///< update: update records
  std::vector<ResourceRecord> additional;

  /// Wire encoding with owner-name compression.
  util::Bytes encode() const;

  /// Decode; throws util::ParseError on malformed input.
  static Message decode(util::BytesView b);

  /// Multi-line presentation form (dig-like).
  std::string to_text() const;

  // Update-message aliases (RFC 2136 section names).
  std::vector<ResourceRecord>& prerequisites() { return answers; }
  const std::vector<ResourceRecord>& prerequisites() const { return answers; }
  std::vector<ResourceRecord>& updates() { return authority; }
  const std::vector<ResourceRecord>& updates() const { return authority; }

  /// Build a query for (name, type).
  static Message make_query(std::uint16_t id, const Name& name, RRType type);

  /// Build the response skeleton for a request (copies id and question).
  static Message make_response(const Message& request);
};

/// Byte length of the question section of an encoded message (the qdcount
/// entries starting at offset 12). The packet cache uses this to splice a
/// client's literal question bytes — exact casing preserved — in front of a
/// stored answer tail. Compression pointers (legal, if unusual, inside a
/// question name) terminate that name. Throws util::ParseError on truncated
/// or malformed input.
std::size_t question_section_span(util::BytesView wire);

}  // namespace sdns::dns
