#include "dns/rr.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sdns::dns {

using util::Bytes;
using util::BytesView;
using util::ParseError;
using util::Reader;
using util::Writer;

std::string to_string(RRType t) {
  switch (t) {
    case RRType::kA: return "A";
    case RRType::kNS: return "NS";
    case RRType::kCNAME: return "CNAME";
    case RRType::kSOA: return "SOA";
    case RRType::kPTR: return "PTR";
    case RRType::kMX: return "MX";
    case RRType::kTXT: return "TXT";
    case RRType::kSIG: return "SIG";
    case RRType::kKEY: return "KEY";
    case RRType::kAAAA: return "AAAA";
    case RRType::kNXT: return "NXT";
    case RRType::kOPT: return "OPT";
    case RRType::kTSIG: return "TSIG";
    case RRType::kIXFR: return "IXFR";
    case RRType::kAXFR: return "AXFR";
    case RRType::kANY: return "ANY";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(t));
}

std::string to_string(RRClass c) {
  switch (c) {
    case RRClass::kIN: return "IN";
    case RRClass::kCH: return "CH";
    case RRClass::kNONE: return "NONE";
    case RRClass::kANY: return "ANY";
  }
  return "CLASS" + std::to_string(static_cast<std::uint16_t>(c));
}

RRType rrtype_from_string(std::string_view s) {
  struct Entry {
    const char* name;
    RRType type;
  };
  static const Entry kTable[] = {
      {"A", RRType::kA},     {"NS", RRType::kNS},     {"CNAME", RRType::kCNAME},
      {"SOA", RRType::kSOA}, {"PTR", RRType::kPTR},   {"MX", RRType::kMX},
      {"TXT", RRType::kTXT}, {"SIG", RRType::kSIG},   {"KEY", RRType::kKEY},
      {"AAAA", RRType::kAAAA}, {"NXT", RRType::kNXT}, {"OPT", RRType::kOPT},
      {"TSIG", RRType::kTSIG},
      {"IXFR", RRType::kIXFR},
      {"AXFR", RRType::kAXFR}, {"ANY", RRType::kANY},
  };
  for (const auto& e : kTable) {
    if (s == e.name) return e.type;
  }
  if (s.substr(0, 4) == "TYPE") {
    int v = 0;
    for (char c : s.substr(4)) {
      if (c < '0' || c > '9') throw ParseError("bad TYPE number");
      v = v * 10 + (c - '0');
      if (v > 0xffff) throw ParseError("TYPE number out of range");
    }
    return static_cast<RRType>(v);
  }
  throw ParseError("unknown RR type: " + std::string(s));
}

void ResourceRecord::to_wire(Writer& w) const {
  name.to_wire(w);
  w.u16(static_cast<std::uint16_t>(type));
  w.u16(static_cast<std::uint16_t>(klass));
  w.u32(ttl);
  w.lp16(rdata);
}

void ResourceRecord::to_canonical_wire(Writer& w) const {
  name.canonical().to_wire(w);
  w.u16(static_cast<std::uint16_t>(type));
  w.u16(static_cast<std::uint16_t>(klass));
  w.u32(ttl);
  w.lp16(rdata);
}

std::string ResourceRecord::to_text() const {
  std::ostringstream os;
  os << name.to_string() << " " << ttl << " " << to_string(klass) << " "
     << to_string(type) << " " << rdata_to_text(type, rdata);
  return os.str();
}

bool operator==(const ResourceRecord& a, const ResourceRecord& b) {
  return a.name == b.name && a.type == b.type && a.klass == b.klass && a.ttl == b.ttl &&
         a.rdata == b.rdata;
}

std::vector<ResourceRecord> RRset::to_records() const {
  std::vector<ResourceRecord> out;
  out.reserve(rdatas.size());
  for (const auto& rd : rdatas) {
    out.push_back({name, type, RRClass::kIN, ttl, rd});
  }
  return out;
}

// ---- A --------------------------------------------------------------------

Bytes ARdata::encode() const { return Bytes(address.begin(), address.end()); }

ARdata ARdata::decode(BytesView b) {
  if (b.size() != 4) throw ParseError("A rdata must be 4 octets");
  ARdata r;
  std::copy(b.begin(), b.end(), r.address.begin());
  return r;
}

ARdata ARdata::from_text(std::string_view s) {
  ARdata r;
  int part = 0, value = 0, digits = 0;
  for (char c : s) {
    if (c == '.') {
      if (digits == 0 || part >= 3) throw ParseError("bad IPv4 address");
      r.address[part++] = static_cast<std::uint8_t>(value);
      value = 0;
      digits = 0;
    } else if (c >= '0' && c <= '9') {
      value = value * 10 + (c - '0');
      if (value > 255) throw ParseError("IPv4 octet out of range");
      ++digits;
    } else {
      throw ParseError("bad IPv4 address character");
    }
  }
  if (digits == 0 || part != 3) throw ParseError("bad IPv4 address");
  r.address[3] = static_cast<std::uint8_t>(value);
  return r;
}

std::string ARdata::to_text() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", address[0], address[1], address[2],
                address[3]);
  return buf;
}

// ---- AAAA -----------------------------------------------------------------

Bytes AaaaRdata::encode() const { return Bytes(address.begin(), address.end()); }

AaaaRdata AaaaRdata::decode(BytesView b) {
  if (b.size() != 16) throw ParseError("AAAA rdata must be 16 octets");
  AaaaRdata r;
  std::copy(b.begin(), b.end(), r.address.begin());
  return r;
}

AaaaRdata AaaaRdata::from_text(std::string_view s) {
  // Split on "::" into head and tail groups of 16-bit hex values.
  auto parse_groups = [](std::string_view part) {
    std::vector<std::uint16_t> groups;
    if (part.empty()) return groups;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= part.size(); ++i) {
      if (i == part.size() || part[i] == ':') {
        std::string_view g = part.substr(start, i - start);
        if (g.empty() || g.size() > 4) throw ParseError("bad IPv6 group");
        int v = 0;
        for (char c : g) {
          int d;
          if (c >= '0' && c <= '9') d = c - '0';
          else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
          else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
          else throw ParseError("bad IPv6 hex digit");
          v = v * 16 + d;
        }
        groups.push_back(static_cast<std::uint16_t>(v));
        start = i + 1;
      }
    }
    return groups;
  };
  std::vector<std::uint16_t> groups;
  const std::size_t gap = s.find("::");
  if (gap != std::string_view::npos) {
    auto head = parse_groups(s.substr(0, gap));
    auto tail = parse_groups(s.substr(gap + 2));
    if (head.size() + tail.size() > 8) throw ParseError("too many IPv6 groups");
    groups = head;
    groups.resize(8 - tail.size(), 0);
    groups.insert(groups.end(), tail.begin(), tail.end());
  } else {
    groups = parse_groups(s);
    if (groups.size() != 8) throw ParseError("IPv6 address needs 8 groups");
  }
  AaaaRdata r;
  for (std::size_t i = 0; i < 8; ++i) {
    r.address[i * 2] = static_cast<std::uint8_t>(groups[i] >> 8);
    r.address[i * 2 + 1] = static_cast<std::uint8_t>(groups[i]);
  }
  return r;
}

std::string AaaaRdata::to_text() const {
  // Full form, no zero compression (valid presentation format).
  std::ostringstream os;
  for (std::size_t i = 0; i < 8; ++i) {
    if (i) os << ':';
    char buf[5];
    std::snprintf(buf, sizeof buf, "%x",
                  (address[i * 2] << 8) | address[i * 2 + 1]);
    os << buf;
  }
  return os.str();
}

// ---- NS / CNAME / PTR -----------------------------------------------------

Bytes NameRdata::encode() const {
  Writer w;
  target.to_wire(w);
  return std::move(w).take();
}

namespace {
Name read_wire_name(Reader& r) {
  std::vector<std::string> labels;
  for (;;) {
    const std::uint8_t len = r.u8();
    if (len == 0) break;
    if (len > 63) throw ParseError("compressed name in rdata not supported here");
    auto raw = r.raw(len);
    labels.emplace_back(raw.begin(), raw.end());
  }
  return Name::from_labels(std::move(labels));
}
}  // namespace

NameRdata NameRdata::decode(BytesView b) {
  Reader r(b);
  NameRdata out{read_wire_name(r)};
  r.expect_done();
  return out;
}

// ---- SOA ------------------------------------------------------------------

Bytes SoaRdata::encode() const {
  Writer w;
  mname.to_wire(w);
  rname.to_wire(w);
  w.u32(serial);
  w.u32(refresh);
  w.u32(retry);
  w.u32(expire);
  w.u32(minimum);
  return std::move(w).take();
}

SoaRdata SoaRdata::decode(BytesView b) {
  Reader r(b);
  SoaRdata s;
  s.mname = read_wire_name(r);
  s.rname = read_wire_name(r);
  s.serial = r.u32();
  s.refresh = r.u32();
  s.retry = r.u32();
  s.expire = r.u32();
  s.minimum = r.u32();
  r.expect_done();
  return s;
}

std::string SoaRdata::to_text() const {
  std::ostringstream os;
  os << mname.to_string() << " " << rname.to_string() << " " << serial << " " << refresh
     << " " << retry << " " << expire << " " << minimum;
  return os.str();
}

// ---- MX -------------------------------------------------------------------

Bytes MxRdata::encode() const {
  Writer w;
  w.u16(preference);
  exchange.to_wire(w);
  return std::move(w).take();
}

MxRdata MxRdata::decode(BytesView b) {
  Reader r(b);
  MxRdata m;
  m.preference = r.u16();
  m.exchange = read_wire_name(r);
  r.expect_done();
  return m;
}

std::string MxRdata::to_text() const {
  return std::to_string(preference) + " " + exchange.to_string();
}

// ---- TXT ------------------------------------------------------------------

Bytes TxtRdata::encode() const {
  Writer w;
  for (const auto& s : strings) {
    if (s.size() > 255) throw std::length_error("TXT string too long");
    w.u8(static_cast<std::uint8_t>(s.size()));
    w.raw(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  return std::move(w).take();
}

TxtRdata TxtRdata::decode(BytesView b) {
  Reader r(b);
  TxtRdata t;
  while (!r.done()) {
    const std::uint8_t len = r.u8();
    auto raw = r.raw(len);
    t.strings.emplace_back(raw.begin(), raw.end());
  }
  if (t.strings.empty()) throw ParseError("TXT rdata must contain a string");
  return t;
}

std::string TxtRdata::to_text() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < strings.size(); ++i) {
    if (i) os << ' ';
    os << '"' << strings[i] << '"';
  }
  return os.str();
}

// ---- KEY ------------------------------------------------------------------

Bytes KeyRdata::encode() const {
  Writer w;
  w.u16(flags);
  w.u8(protocol);
  w.u8(algorithm);
  w.raw(public_key);
  return std::move(w).take();
}

KeyRdata KeyRdata::decode(BytesView b) {
  Reader r(b);
  KeyRdata k;
  k.flags = r.u16();
  k.protocol = r.u8();
  k.algorithm = r.u8();
  k.public_key = r.raw_copy(r.remaining());
  return k;
}

std::string KeyRdata::to_text() const {
  std::ostringstream os;
  os << flags << " " << static_cast<int>(protocol) << " " << static_cast<int>(algorithm)
     << " " << util::hex_encode(public_key);
  return os.str();
}

// ---- SIG ------------------------------------------------------------------

Bytes SigRdata::presignature_prefix() const {
  Writer w;
  w.u16(static_cast<std::uint16_t>(type_covered));
  w.u8(algorithm);
  w.u8(labels);
  w.u32(original_ttl);
  w.u32(expiration);
  w.u32(inception);
  w.u16(key_tag);
  signer.canonical().to_wire(w);
  return std::move(w).take();
}

Bytes SigRdata::encode() const {
  Writer w;
  w.u16(static_cast<std::uint16_t>(type_covered));
  w.u8(algorithm);
  w.u8(labels);
  w.u32(original_ttl);
  w.u32(expiration);
  w.u32(inception);
  w.u16(key_tag);
  signer.to_wire(w);
  w.raw(signature);
  return std::move(w).take();
}

SigRdata SigRdata::decode(BytesView b) {
  Reader r(b);
  SigRdata s;
  s.type_covered = static_cast<RRType>(r.u16());
  s.algorithm = r.u8();
  s.labels = r.u8();
  s.original_ttl = r.u32();
  s.expiration = r.u32();
  s.inception = r.u32();
  s.key_tag = r.u16();
  s.signer = read_wire_name(r);
  s.signature = r.raw_copy(r.remaining());
  return s;
}

std::string SigRdata::to_text() const {
  std::ostringstream os;
  os << to_string(type_covered) << " " << static_cast<int>(algorithm) << " "
     << static_cast<int>(labels) << " " << original_ttl << " " << expiration << " "
     << inception << " " << key_tag << " " << signer.to_string() << " "
     << util::hex_encode(signature);
  return os.str();
}

// ---- NXT ------------------------------------------------------------------

Bytes NxtRdata::encode() const {
  Writer w;
  next.to_wire(w);
  std::uint8_t bitmap[16] = {};
  for (RRType t : types) {
    const auto v = static_cast<std::uint16_t>(t);
    if (v > 127) throw std::length_error("NXT bitmap covers types 0..127 only");
    bitmap[v / 8] |= static_cast<std::uint8_t>(0x80 >> (v % 8));
  }
  w.raw(bitmap, sizeof bitmap);
  return std::move(w).take();
}

NxtRdata NxtRdata::decode(BytesView b) {
  Reader r(b);
  NxtRdata n;
  n.next = read_wire_name(r);
  auto bitmap = r.raw(r.remaining());
  if (bitmap.size() > 16) throw ParseError("NXT bitmap too long");
  for (std::size_t byte = 0; byte < bitmap.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      if (bitmap[byte] & (0x80 >> bit)) {
        n.types.push_back(static_cast<RRType>(byte * 8 + static_cast<std::size_t>(bit)));
      }
    }
  }
  return n;
}

std::string NxtRdata::to_text() const {
  std::ostringstream os;
  os << next.to_string();
  for (RRType t : types) os << ' ' << to_string(t);
  return os.str();
}

bool NxtRdata::has_type(RRType t) const {
  return std::find(types.begin(), types.end(), t) != types.end();
}

// ---- TSIG -----------------------------------------------------------------

Bytes TsigRdata::encode() const {
  Writer w;
  w.str(key_name);
  w.u64(timestamp);
  w.lp16(mac);
  return std::move(w).take();
}

TsigRdata TsigRdata::decode(BytesView b) {
  Reader r(b);
  TsigRdata t;
  t.key_name = r.str();
  t.timestamp = r.u64();
  t.mac = r.lp16();
  r.expect_done();
  return t;
}

std::string TsigRdata::to_text() const {
  return key_name + " " + std::to_string(timestamp) + " " + util::hex_encode(mac);
}

// ---- text dispatch --------------------------------------------------------

std::string rdata_to_text(RRType type, BytesView rdata) {
  try {
    switch (type) {
      case RRType::kA: return ARdata::decode(rdata).to_text();
      case RRType::kAAAA: return AaaaRdata::decode(rdata).to_text();
      case RRType::kNS:
      case RRType::kCNAME:
      case RRType::kPTR: return NameRdata::decode(rdata).to_text();
      case RRType::kSOA: return SoaRdata::decode(rdata).to_text();
      case RRType::kMX: return MxRdata::decode(rdata).to_text();
      case RRType::kTXT: return TxtRdata::decode(rdata).to_text();
      case RRType::kKEY: return KeyRdata::decode(rdata).to_text();
      case RRType::kSIG: return SigRdata::decode(rdata).to_text();
      case RRType::kNXT: return NxtRdata::decode(rdata).to_text();
      case RRType::kTSIG: return TsigRdata::decode(rdata).to_text();
      default: break;
    }
  } catch (const ParseError&) {
    // fall through to hex
  }
  return "\\# " + std::to_string(rdata.size()) + " " + util::hex_encode(rdata);
}

namespace {
std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  bool quoted = false;
  for (char c : s) {
    if (c == '"') {
      quoted = !quoted;
      continue;
    }
    if (!quoted && (c == ' ' || c == '\t')) {
      if (!cur.empty()) {
        out.push_back(std::move(cur));
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::uint32_t parse_u32(const std::string& s) {
  std::uint64_t v = 0;
  if (s.empty()) throw ParseError("empty number");
  for (char c : s) {
    if (c < '0' || c > '9') throw ParseError("bad number: " + s);
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xffffffffULL) throw ParseError("number out of range: " + s);
  }
  return static_cast<std::uint32_t>(v);
}
}  // namespace

Bytes rdata_from_text(RRType type, std::string_view text) {
  const auto tok = split_ws(text);
  switch (type) {
    case RRType::kA:
      if (tok.size() != 1) throw ParseError("A rdata wants one field");
      return ARdata::from_text(tok[0]).encode();
    case RRType::kAAAA:
      if (tok.size() != 1) throw ParseError("AAAA rdata wants one field");
      return AaaaRdata::from_text(tok[0]).encode();
    case RRType::kNS:
    case RRType::kCNAME:
    case RRType::kPTR:
      if (tok.size() != 1) throw ParseError("name rdata wants one field");
      return NameRdata{Name::parse(tok[0])}.encode();
    case RRType::kSOA: {
      if (tok.size() != 7) throw ParseError("SOA rdata wants 7 fields");
      SoaRdata s;
      s.mname = Name::parse(tok[0]);
      s.rname = Name::parse(tok[1]);
      s.serial = parse_u32(tok[2]);
      s.refresh = parse_u32(tok[3]);
      s.retry = parse_u32(tok[4]);
      s.expire = parse_u32(tok[5]);
      s.minimum = parse_u32(tok[6]);
      return s.encode();
    }
    case RRType::kMX: {
      if (tok.size() != 2) throw ParseError("MX rdata wants 2 fields");
      MxRdata m;
      const std::uint32_t pref = parse_u32(tok[0]);
      if (pref > 0xffff) throw ParseError("MX preference out of range");
      m.preference = static_cast<std::uint16_t>(pref);
      m.exchange = Name::parse(tok[1]);
      return m.encode();
    }
    case RRType::kTXT: {
      if (tok.empty()) throw ParseError("TXT rdata wants at least one string");
      TxtRdata t;
      t.strings = tok;
      return t.encode();
    }
    default:
      throw ParseError("no text parser for type " + to_string(type));
  }
}

}  // namespace sdns::dns
