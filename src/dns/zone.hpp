// Authoritative zone storage.
//
// A Zone holds the RRsets of one DNS zone keyed by (owner name, type), with
// owner names ordered canonically (RFC 4034 §6.1).  The canonical order is
// what the NXT chain walks: every authoritative name carries an NXT record
// naming its successor (the last name wraps to the apex), which lets a
// signed zone prove the *absence* of names and types.  Rebuilding that chain
// after a dynamic update is what makes the paper's adds cost 4 threshold
// signatures and deletes 2 (§5.2).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "dns/rr.hpp"

namespace sdns::dns {

class Zone {
 public:
  explicit Zone(Name origin);

  /// Parse a simple master-file format: one record per line,
  /// "name [ttl] [IN] type rdata", '@' for the origin, names without a
  /// trailing dot are relative to the origin, ';' starts a comment.
  static Zone from_text(const Name& origin, std::string_view text);

  const Name& origin() const { return origin_; }

  /// True if `name` is at or below the origin.
  bool in_zone(const Name& name) const { return name.is_subdomain_of(origin_); }

  // ---- lookup ----
  const RRset* find(const Name& name, RRType type) const;
  std::vector<RRset> rrsets_at(const Name& name) const;
  bool name_exists(const Name& name) const;
  /// The last existing name canonically <= `name` (for NXT denial); the apex
  /// if `name` precedes every existing name.
  Name predecessor(const Name& name) const;

  // ---- mutation (low level; callers manage serial / NXT / SIGs) ----
  /// Insert one record, merging into its RRset (duplicates ignored,
  /// RRset TTL follows the new record).
  void add_record(const ResourceRecord& rr);
  /// Remove a whole RRset; returns true if something was removed.
  bool remove_rrset(const Name& name, RRType type);
  /// Remove one record matched by rdata; returns true if removed.
  bool remove_record(const Name& name, RRType type, util::BytesView rdata);
  /// Remove every RRset at a name.
  bool remove_name(const Name& name);

  // ---- SOA ----
  std::optional<SoaRdata> soa() const;
  /// Increment the SOA serial (throws std::logic_error if no SOA).
  void bump_serial();

  // ---- iteration ----
  /// All owner names, canonical order.
  std::vector<Name> names() const;
  void for_each_rrset(const std::function<void(const RRset&)>& fn) const;
  std::size_t record_count() const;
  std::size_t rrset_count() const;

  /// Recompute the NXT record at every name (next pointer + type bitmap,
  /// including the NXT and SIG types themselves). Returns the owner names
  /// whose NXT record changed or was created; removes NXT records at names
  /// that vanished. Names above 127 in the type registry are skipped in the
  /// bitmap (none of our supported types are).
  std::vector<Name> rebuild_nxt_chain();

  /// Drop all SIG records covering `type` at `name`.
  void remove_sigs(const Name& name, RRType covered);

  /// Full presentation-format dump in canonical order.
  std::string to_text() const;

  /// Binary snapshot of the whole zone (origin + every record), used for
  /// AXFR-style transfers and replica recovery. from_wire throws
  /// util::ParseError on malformed input.
  util::Bytes to_wire() const;
  static Zone from_wire(util::BytesView data);

  /// Every record in canonical order (SOA-first AXFR framing is up to the
  /// caller).
  std::vector<ResourceRecord> all_records() const;

 private:
  struct CanonicalLess {
    bool operator()(const Name& a, const Name& b) const {
      return Name::canonical_compare(a, b) < 0;
    }
  };

  Name origin_;
  std::map<Name, std::map<RRType, RRset>, CanonicalLess> data_;
};

}  // namespace sdns::dns
