// Authoritative zone storage.
//
// A Zone holds the RRsets of one DNS zone keyed by (owner name, type), with
// owner names ordered canonically (RFC 4034 §6.1).  The canonical order is
// what the NXT chain walks: every authoritative name carries an NXT record
// naming its successor (the last name wraps to the apex), which lets a
// signed zone prove the *absence* of names and types.  Rebuilding that chain
// after a dynamic update is what makes the paper's adds cost 4 threshold
// signatures and deletes 2 (§5.2).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "dns/rr.hpp"

namespace sdns::dns {

class Zone {
 public:
  /// Canonical owner-name ordering (RFC 4034 §6.1) for the zone map.
  struct CanonicalLess {
    bool operator()(const Name& a, const Name& b) const {
      return Name::canonical_compare(a, b) < 0;
    }
  };
  using TypeMap = std::map<RRType, RRset>;
  using DataMap = std::map<Name, TypeMap, CanonicalLess>;

  /// Records per chunk in the SDNSZONE2 wire format (see to_wire). Chunks
  /// close on owner-name boundaries, so real chunks may run slightly over.
  static constexpr std::size_t kDefaultChunkRecords = 65536;

  explicit Zone(Name origin);

  /// Parse a simple master-file format: one record per line,
  /// "name [ttl] [IN] type rdata", '@' for the origin, names without a
  /// trailing dot are relative to the origin, ';' starts a comment.
  static Zone from_text(const Name& origin, std::string_view text);

  const Name& origin() const { return origin_; }

  /// True if `name` is at or below the origin.
  bool in_zone(const Name& name) const { return name.is_subdomain_of(origin_); }

  // ---- lookup ----
  const RRset* find(const Name& name, RRType type) const;
  std::vector<RRset> rrsets_at(const Name& name) const;
  bool name_exists(const Name& name) const;
  /// The last existing name canonically <= `name` (for NXT denial); the apex
  /// if `name` precedes every existing name.
  Name predecessor(const Name& name) const;

  // ---- mutation (low level; callers manage serial / NXT / SIGs) ----
  /// Insert one record, merging into its RRset (duplicates ignored,
  /// RRset TTL follows the new record).
  void add_record(const ResourceRecord& rr);
  /// Remove a whole RRset; returns true if something was removed.
  bool remove_rrset(const Name& name, RRType type);
  /// Remove one record matched by rdata; returns true if removed.
  bool remove_record(const Name& name, RRType type, util::BytesView rdata);
  /// Remove every RRset at a name.
  bool remove_name(const Name& name);

  // ---- SOA ----
  std::optional<SoaRdata> soa() const;
  /// Increment the SOA serial (throws std::logic_error if no SOA).
  void bump_serial();

  // ---- iteration ----
  /// All owner names, canonical order.
  std::vector<Name> names() const;
  void for_each_rrset(const std::function<void(const RRset&)>& fn) const;
  std::size_t record_count() const;
  std::size_t rrset_count() const;

  /// Recompute the NXT record at every name (next pointer + type bitmap,
  /// including the NXT and SIG types themselves). Returns the owner names
  /// whose NXT record changed or was created; removes NXT records at names
  /// that vanished. Names above 127 in the type registry are skipped in the
  /// bitmap (none of our supported types are).
  std::vector<Name> rebuild_nxt_chain();

  /// Drop all SIG records covering `type` at `name`. Malformed SIG rdata is
  /// also dropped (it can never verify) but counted in
  /// malformed_sigs_dropped() so operators and chaos invariants can see it:
  /// in a fault-free run the counter must stay zero.
  void remove_sigs(const Name& name, RRType covered);

  /// Total malformed SIG rdatas silently discarded by remove_sigs over the
  /// life of this Zone object (exported as dns.zone.malformed_sigs_dropped).
  std::uint64_t malformed_sigs_dropped() const { return malformed_sigs_dropped_; }

  /// Full presentation-format dump in canonical order.
  std::string to_text() const;

  /// Binary snapshot of the whole zone (origin + every record), used for
  /// AXFR-style transfers and replica recovery. to_wire emits the chunked
  /// SDNSZONE2 format (magic + owner-aligned chunk index + canonical-order
  /// records) streamed straight off the map — no intermediate record vector.
  /// from_wire auto-detects the format: SDNSZONE2 parses chunks in parallel
  /// (`threads` workers; 0 = hardware concurrency) with strict order
  /// verification, while legacy v1 input (origin-first, no magic) stays
  /// readable forever via a sorted bulk-load path that falls back to
  /// add_record on out-of-order input. Throws util::ParseError on malformed
  /// input. Both writers and the parallel parser are deterministic: the same
  /// zone yields the same bytes, and the same bytes yield the same zone
  /// regardless of thread count.
  util::Bytes to_wire() const { return to_wire_v2(kDefaultChunkRecords); }
  util::Bytes to_wire_v2(std::size_t chunk_records) const;
  /// Legacy (pre-SDNSZONE2) encoding: origin, u32 record count, records.
  /// Kept for compatibility tests and for peers that only speak v1.
  util::Bytes to_wire_v1() const;
  static Zone from_wire(util::BytesView data, unsigned threads = 0);

  /// Builds a zone from a stream of records that is *expected* to arrive in
  /// canonical order (AXFR from our own serializers, snapshot replay).
  /// In-order records append in O(1) amortized; an out-of-order record
  /// degrades that single insert to the general add_record path, never
  /// rejects. Semantics match add_record exactly (duplicate rdatas collapse,
  /// RRset TTL follows the newest record).
  class SortedInserter {
   public:
    explicit SortedInserter(Zone& zone) : zone_(zone) {}
    void add(const ResourceRecord& rr);

   private:
    Zone& zone_;
  };

  /// Every record in canonical order (SOA-first AXFR framing is up to the
  /// caller).
  std::vector<ResourceRecord> all_records() const;

 private:
  static Zone from_wire_v1(util::BytesView data);
  static Zone from_wire_v2(util::BytesView data, unsigned threads);

  Name origin_;
  DataMap data_;
  std::uint64_t malformed_sigs_dropped_ = 0;
};

}  // namespace sdns::dns
