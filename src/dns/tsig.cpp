#include "dns/tsig.hpp"

#include "crypto/hmac.hpp"

namespace sdns::dns {

namespace {

util::Bytes mac_input(const Message& msg_without_tsig, const std::string& key_name,
                      std::uint64_t timestamp) {
  // The id is excluded from the MAC: resolvers assign it at send time, after
  // the update body is composed and signed. Freshness comes from the
  // timestamp (real TSIG instead covers the original id).
  Message normalized = msg_without_tsig;
  normalized.id = 0;
  util::Writer w;
  w.raw(normalized.encode());
  w.str(key_name);
  w.u64(timestamp);
  return std::move(w).take();
}

}  // namespace

void tsig_sign(Message& msg, const TsigKey& key, std::uint64_t timestamp) {
  TsigRdata tsig;
  tsig.key_name = key.name;
  tsig.timestamp = timestamp;
  tsig.mac = crypto::hmac_sha1(key.secret, mac_input(msg, key.name, timestamp));
  ResourceRecord rr;
  rr.name = Name::parse(key.name + ".");
  rr.type = RRType::kTSIG;
  rr.klass = RRClass::kANY;
  rr.ttl = 0;
  rr.rdata = tsig.encode();
  msg.additional.push_back(std::move(rr));
}

TsigStatus tsig_verify(
    Message& msg,
    const std::function<std::optional<util::Bytes>(const std::string&)>& lookup,
    const TsigVerifyOptions& options, std::string* key_name_out) {
  if (msg.additional.empty() || msg.additional.back().type != RRType::kTSIG) {
    return TsigStatus::kMissing;
  }
  TsigRdata tsig;
  try {
    tsig = TsigRdata::decode(msg.additional.back().rdata);
  } catch (const util::ParseError&) {
    return TsigStatus::kBadMac;
  }
  const auto secret = lookup(tsig.key_name);
  if (!secret) return TsigStatus::kUnknownKey;
  Message without = msg;
  without.additional.pop_back();
  const util::Bytes expected =
      crypto::hmac_sha1(*secret, mac_input(without, tsig.key_name, tsig.timestamp));
  if (!util::constant_time_equal(expected, tsig.mac)) return TsigStatus::kBadMac;
  if (options.now) {
    // MAC first, then freshness: the timestamp is only meaningful once the
    // signature over it has been validated. Outside |now - ts| <= fudge the
    // message is authentic but stale — a capture-and-replay.
    const std::uint64_t now = options.now();
    const std::uint64_t ts = tsig.timestamp;
    if (ts > now + options.fudge || ts + options.fudge < now) {
      return TsigStatus::kBadTime;
    }
  }
  msg.additional.pop_back();
  if (key_name_out) *key_name_out = tsig.key_name;
  return TsigStatus::kOk;
}

TsigStatus tsig_verify(
    Message& msg,
    const std::function<std::optional<util::Bytes>(const std::string&)>& lookup,
    std::string* key_name_out) {
  return tsig_verify(msg, lookup, TsigVerifyOptions{}, key_name_out);
}

}  // namespace sdns::dns
