#include "dns/zone.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sdns::dns {

using util::Bytes;
using util::BytesView;
using util::ParseError;

Zone::Zone(Name origin) : origin_(std::move(origin)) {}

const RRset* Zone::find(const Name& name, RRType type) const {
  auto it = data_.find(name);
  if (it == data_.end()) return nullptr;
  auto jt = it->second.find(type);
  if (jt == it->second.end()) return nullptr;
  return &jt->second;
}

std::vector<RRset> Zone::rrsets_at(const Name& name) const {
  std::vector<RRset> out;
  auto it = data_.find(name);
  if (it == data_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [type, rrset] : it->second) out.push_back(rrset);
  return out;
}

bool Zone::name_exists(const Name& name) const { return data_.count(name) != 0; }

Name Zone::predecessor(const Name& name) const {
  if (data_.empty()) return origin_;
  auto it = data_.upper_bound(name);
  if (it == data_.begin()) return origin_;
  --it;
  return it->first;
}

void Zone::add_record(const ResourceRecord& rr) {
  auto& rrset = data_[rr.name][rr.type];
  rrset.name = rr.name;
  rrset.type = rr.type;
  rrset.ttl = rr.ttl;
  if (std::find(rrset.rdatas.begin(), rrset.rdatas.end(), rr.rdata) ==
      rrset.rdatas.end()) {
    rrset.rdatas.push_back(rr.rdata);
  }
}

bool Zone::remove_rrset(const Name& name, RRType type) {
  auto it = data_.find(name);
  if (it == data_.end()) return false;
  const bool removed = it->second.erase(type) != 0;
  if (it->second.empty()) data_.erase(it);
  return removed;
}

bool Zone::remove_record(const Name& name, RRType type, BytesView rdata) {
  auto it = data_.find(name);
  if (it == data_.end()) return false;
  auto jt = it->second.find(type);
  if (jt == it->second.end()) return false;
  auto& rdatas = jt->second.rdatas;
  auto rt = std::find_if(rdatas.begin(), rdatas.end(), [&](const Bytes& b) {
    return BytesView(b).size() == rdata.size() &&
           std::equal(b.begin(), b.end(), rdata.begin());
  });
  if (rt == rdatas.end()) return false;
  rdatas.erase(rt);
  if (rdatas.empty()) it->second.erase(jt);
  if (it->second.empty()) data_.erase(it);
  return true;
}

bool Zone::remove_name(const Name& name) { return data_.erase(name) != 0; }

std::optional<SoaRdata> Zone::soa() const {
  const RRset* rrset = find(origin_, RRType::kSOA);
  if (!rrset || rrset->rdatas.empty()) return std::nullopt;
  return SoaRdata::decode(rrset->rdatas.front());
}

void Zone::bump_serial() {
  auto it = data_.find(origin_);
  if (it == data_.end()) throw std::logic_error("zone has no SOA");
  auto jt = it->second.find(RRType::kSOA);
  if (jt == it->second.end() || jt->second.rdatas.empty()) {
    throw std::logic_error("zone has no SOA");
  }
  SoaRdata soa = SoaRdata::decode(jt->second.rdatas.front());
  ++soa.serial;
  jt->second.rdatas.front() = soa.encode();
}

std::vector<Name> Zone::names() const {
  std::vector<Name> out;
  out.reserve(data_.size());
  for (const auto& [name, types] : data_) out.push_back(name);
  return out;
}

void Zone::for_each_rrset(const std::function<void(const RRset&)>& fn) const {
  for (const auto& [name, types] : data_) {
    for (const auto& [type, rrset] : types) fn(rrset);
  }
}

std::size_t Zone::record_count() const {
  std::size_t n = 0;
  for (const auto& [name, types] : data_) {
    for (const auto& [type, rrset] : types) n += rrset.rdatas.size();
  }
  return n;
}

std::size_t Zone::rrset_count() const {
  std::size_t n = 0;
  for (const auto& [name, types] : data_) n += types.size();
  return n;
}

std::vector<Name> Zone::rebuild_nxt_chain() {
  std::vector<Name> changed;
  // Names holding only DNSSEC meta-records (NXT/SIG) are empty: they leave
  // the zone and the chain entirely.
  for (auto it = data_.begin(); it != data_.end();) {
    bool only_meta = true;
    for (const auto& [type, rrset] : it->second) {
      if (type != RRType::kNXT && type != RRType::kSIG) {
        only_meta = false;
        break;
      }
    }
    if (only_meta) {
      it = data_.erase(it);
    } else {
      ++it;
    }
  }
  if (data_.empty()) return changed;
  // Gather owner names (all existing names participate in the chain).
  std::vector<const Name*> owners;
  owners.reserve(data_.size());
  for (const auto& [name, types] : data_) owners.push_back(&name);

  const std::uint32_t nxt_ttl = [&] {
    auto s = soa();
    return s ? s->minimum : 300u;
  }();

  for (std::size_t i = 0; i < owners.size(); ++i) {
    const Name& owner = *owners[i];
    const Name& next = *owners[(i + 1) % owners.size()];
    auto& types_at_owner = data_.find(owner)->second;
    NxtRdata nxt;
    nxt.next = next;
    for (const auto& [type, rrset] : types_at_owner) {
      if (static_cast<std::uint16_t>(type) <= 127 && type != RRType::kNXT) {
        nxt.types.push_back(type);
      }
    }
    nxt.types.push_back(RRType::kNXT);
    if (std::find(nxt.types.begin(), nxt.types.end(), RRType::kSIG) == nxt.types.end()) {
      nxt.types.push_back(RRType::kSIG);
    }
    std::sort(nxt.types.begin(), nxt.types.end());
    const Bytes encoded = nxt.encode();
    auto jt = types_at_owner.find(RRType::kNXT);
    if (jt != types_at_owner.end() && jt->second.rdatas.size() == 1 &&
        jt->second.rdatas.front() == encoded) {
      continue;  // unchanged
    }
    RRset rrset;
    rrset.name = owner;
    rrset.type = RRType::kNXT;
    rrset.ttl = nxt_ttl;
    rrset.rdatas = {encoded};
    types_at_owner[RRType::kNXT] = std::move(rrset);
    changed.push_back(owner);
  }
  return changed;
}

void Zone::remove_sigs(const Name& name, RRType covered) {
  auto it = data_.find(name);
  if (it == data_.end()) return;
  auto jt = it->second.find(RRType::kSIG);
  if (jt == it->second.end()) return;
  auto& rdatas = jt->second.rdatas;
  rdatas.erase(std::remove_if(rdatas.begin(), rdatas.end(),
                              [&](const Bytes& rd) {
                                try {
                                  return SigRdata::decode(rd).type_covered == covered;
                                } catch (const ParseError&) {
                                  return true;  // drop malformed SIGs
                                }
                              }),
               rdatas.end());
  if (rdatas.empty()) it->second.erase(jt);
  if (it->second.empty()) data_.erase(it);
}

std::vector<ResourceRecord> Zone::all_records() const {
  std::vector<ResourceRecord> out;
  for_each_rrset([&](const RRset& rrset) {
    for (auto& rr : rrset.to_records()) out.push_back(std::move(rr));
  });
  return out;
}

util::Bytes Zone::to_wire() const {
  util::Writer w;
  origin_.to_wire(w);
  const auto records = all_records();
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const auto& rr : records) rr.to_wire(w);
  return std::move(w).take();
}

Zone Zone::from_wire(util::BytesView data) {
  util::Reader r(data);
  std::vector<std::string> labels;
  for (;;) {
    const std::uint8_t len = r.u8();
    if (len == 0) break;
    if (len > 63) throw ParseError("bad origin label");
    auto raw = r.raw(len);
    labels.emplace_back(raw.begin(), raw.end());
  }
  Zone zone(Name::from_labels(std::move(labels)));
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    ResourceRecord rr;
    std::vector<std::string> owner;
    for (;;) {
      const std::uint8_t len = r.u8();
      if (len == 0) break;
      if (len > 63) throw ParseError("bad owner label");
      auto raw = r.raw(len);
      owner.emplace_back(raw.begin(), raw.end());
    }
    rr.name = Name::from_labels(std::move(owner));
    rr.type = static_cast<RRType>(r.u16());
    rr.klass = static_cast<RRClass>(r.u16());
    rr.ttl = r.u32();
    rr.rdata = r.lp16();
    if (!zone.in_zone(rr.name)) throw ParseError("record outside zone in snapshot");
    zone.add_record(rr);
  }
  r.expect_done();
  return zone;
}

std::string Zone::to_text() const {
  std::ostringstream os;
  for_each_rrset([&](const RRset& rrset) {
    for (const auto& rr : rrset.to_records()) os << rr.to_text() << "\n";
  });
  return os.str();
}

namespace {
std::uint32_t parse_zone_u32(const std::string& s, std::size_t line_no) {
  if (s.empty()) throw ParseError("empty number at line " + std::to_string(line_no));
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw ParseError("bad number '" + s + "' at line " + std::to_string(line_no));
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xffffffffULL) {
      throw ParseError("number out of range at line " + std::to_string(line_no));
    }
  }
  return static_cast<std::uint32_t>(v);
}
}  // namespace

Zone Zone::from_text(const Name& origin, std::string_view text) {
  Zone zone(origin);
  std::uint32_t default_ttl = 3600;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    // Strip comments.
    if (auto c = line.find(';'); c != std::string_view::npos) line = line.substr(0, c);
    // Tokenize.
    std::vector<std::string> tok;
    std::string cur;
    bool quoted = false;
    for (char ch : line) {
      if (ch == '"') {
        quoted = !quoted;
        cur.push_back(ch);
        continue;
      }
      if (!quoted && (ch == ' ' || ch == '\t' || ch == '\r')) {
        if (!cur.empty()) {
          tok.push_back(std::move(cur));
          cur.clear();
        }
      } else {
        cur.push_back(ch);
      }
    }
    if (!cur.empty()) tok.push_back(std::move(cur));
    if (tok.empty()) continue;
    if (tok[0] == "$TTL") {
      if (tok.size() != 2) throw ParseError("bad $TTL at line " + std::to_string(line_no));
      default_ttl = parse_zone_u32(tok[1], line_no);
      continue;
    }
    if (tok.size() < 3) throw ParseError("short record at line " + std::to_string(line_no));

    std::size_t i = 0;
    Name owner = tok[i] == "@" ? origin : Name::parse(tok[i]);
    if (tok[i] != "@" && tok[i].back() != '.') {
      // Relative name: append origin.
      std::vector<std::string> labels;
      for (std::size_t l = 0; l < owner.label_count(); ++l) labels.push_back(owner.label(l));
      Name abs = origin;
      for (auto it = labels.rbegin(); it != labels.rend(); ++it) abs = abs.child(*it);
      owner = abs;
    }
    ++i;
    std::uint32_t ttl = default_ttl;
    if (i < tok.size() && !tok[i].empty() && tok[i][0] >= '0' && tok[i][0] <= '9') {
      ttl = parse_zone_u32(tok[i], line_no);
      ++i;
    }
    if (i < tok.size() && tok[i] == "IN") ++i;
    if (i >= tok.size()) throw ParseError("missing type at line " + std::to_string(line_no));
    const RRType type = rrtype_from_string(tok[i]);
    ++i;
    std::string rdata_text;
    for (; i < tok.size(); ++i) {
      if (!rdata_text.empty()) rdata_text.push_back(' ');
      rdata_text += tok[i];
    }
    ResourceRecord rr;
    rr.name = owner;
    rr.type = type;
    rr.ttl = ttl;
    rr.rdata = rdata_from_text(type, rdata_text);
    if (!zone.in_zone(rr.name)) {
      throw ParseError("record outside zone at line " + std::to_string(line_no));
    }
    zone.add_record(rr);
  }
  return zone;
}

}  // namespace sdns::dns
