#include "dns/zone.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace sdns::dns {

using util::Bytes;
using util::BytesView;
using util::ParseError;

Zone::Zone(Name origin) : origin_(std::move(origin)) {}

const RRset* Zone::find(const Name& name, RRType type) const {
  auto it = data_.find(name);
  if (it == data_.end()) return nullptr;
  auto jt = it->second.find(type);
  if (jt == it->second.end()) return nullptr;
  return &jt->second;
}

std::vector<RRset> Zone::rrsets_at(const Name& name) const {
  std::vector<RRset> out;
  auto it = data_.find(name);
  if (it == data_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [type, rrset] : it->second) out.push_back(rrset);
  return out;
}

bool Zone::name_exists(const Name& name) const { return data_.count(name) != 0; }

Name Zone::predecessor(const Name& name) const {
  if (data_.empty()) return origin_;
  auto it = data_.upper_bound(name);
  if (it == data_.begin()) return origin_;
  --it;
  return it->first;
}

void Zone::add_record(const ResourceRecord& rr) {
  auto& rrset = data_[rr.name][rr.type];
  rrset.name = rr.name;
  rrset.type = rr.type;
  rrset.ttl = rr.ttl;
  if (std::find(rrset.rdatas.begin(), rrset.rdatas.end(), rr.rdata) ==
      rrset.rdatas.end()) {
    rrset.rdatas.push_back(rr.rdata);
  }
}

bool Zone::remove_rrset(const Name& name, RRType type) {
  auto it = data_.find(name);
  if (it == data_.end()) return false;
  const bool removed = it->second.erase(type) != 0;
  if (it->second.empty()) data_.erase(it);
  return removed;
}

bool Zone::remove_record(const Name& name, RRType type, BytesView rdata) {
  auto it = data_.find(name);
  if (it == data_.end()) return false;
  auto jt = it->second.find(type);
  if (jt == it->second.end()) return false;
  auto& rdatas = jt->second.rdatas;
  auto rt = std::find_if(rdatas.begin(), rdatas.end(), [&](const Bytes& b) {
    return BytesView(b).size() == rdata.size() &&
           std::equal(b.begin(), b.end(), rdata.begin());
  });
  if (rt == rdatas.end()) return false;
  rdatas.erase(rt);
  if (rdatas.empty()) it->second.erase(jt);
  if (it->second.empty()) data_.erase(it);
  return true;
}

bool Zone::remove_name(const Name& name) { return data_.erase(name) != 0; }

std::optional<SoaRdata> Zone::soa() const {
  const RRset* rrset = find(origin_, RRType::kSOA);
  if (!rrset || rrset->rdatas.empty()) return std::nullopt;
  return SoaRdata::decode(rrset->rdatas.front());
}

void Zone::bump_serial() {
  auto it = data_.find(origin_);
  if (it == data_.end()) throw std::logic_error("zone has no SOA");
  auto jt = it->second.find(RRType::kSOA);
  if (jt == it->second.end() || jt->second.rdatas.empty()) {
    throw std::logic_error("zone has no SOA");
  }
  SoaRdata soa = SoaRdata::decode(jt->second.rdatas.front());
  ++soa.serial;
  jt->second.rdatas.front() = soa.encode();
}

std::vector<Name> Zone::names() const {
  std::vector<Name> out;
  out.reserve(data_.size());
  for (const auto& [name, types] : data_) out.push_back(name);
  return out;
}

void Zone::for_each_rrset(const std::function<void(const RRset&)>& fn) const {
  for (const auto& [name, types] : data_) {
    for (const auto& [type, rrset] : types) fn(rrset);
  }
}

std::size_t Zone::record_count() const {
  std::size_t n = 0;
  for (const auto& [name, types] : data_) {
    for (const auto& [type, rrset] : types) n += rrset.rdatas.size();
  }
  return n;
}

std::size_t Zone::rrset_count() const {
  std::size_t n = 0;
  for (const auto& [name, types] : data_) n += types.size();
  return n;
}

std::vector<Name> Zone::rebuild_nxt_chain() {
  std::vector<Name> changed;
  // Names holding only DNSSEC meta-records (NXT/SIG) are empty: they leave
  // the zone and the chain entirely.
  for (auto it = data_.begin(); it != data_.end();) {
    bool only_meta = true;
    for (const auto& [type, rrset] : it->second) {
      if (type != RRType::kNXT && type != RRType::kSIG) {
        only_meta = false;
        break;
      }
    }
    if (only_meta) {
      it = data_.erase(it);
    } else {
      ++it;
    }
  }
  if (data_.empty()) return changed;
  // Gather owner names (all existing names participate in the chain).
  std::vector<const Name*> owners;
  owners.reserve(data_.size());
  for (const auto& [name, types] : data_) owners.push_back(&name);

  const std::uint32_t nxt_ttl = [&] {
    auto s = soa();
    return s ? s->minimum : 300u;
  }();

  for (std::size_t i = 0; i < owners.size(); ++i) {
    const Name& owner = *owners[i];
    const Name& next = *owners[(i + 1) % owners.size()];
    auto& types_at_owner = data_.find(owner)->second;
    NxtRdata nxt;
    nxt.next = next;
    for (const auto& [type, rrset] : types_at_owner) {
      if (static_cast<std::uint16_t>(type) <= 127 && type != RRType::kNXT) {
        nxt.types.push_back(type);
      }
    }
    nxt.types.push_back(RRType::kNXT);
    if (std::find(nxt.types.begin(), nxt.types.end(), RRType::kSIG) == nxt.types.end()) {
      nxt.types.push_back(RRType::kSIG);
    }
    std::sort(nxt.types.begin(), nxt.types.end());
    const Bytes encoded = nxt.encode();
    auto jt = types_at_owner.find(RRType::kNXT);
    if (jt != types_at_owner.end() && jt->second.rdatas.size() == 1 &&
        jt->second.rdatas.front() == encoded) {
      continue;  // unchanged
    }
    RRset rrset;
    rrset.name = owner;
    rrset.type = RRType::kNXT;
    rrset.ttl = nxt_ttl;
    rrset.rdatas = {encoded};
    types_at_owner[RRType::kNXT] = std::move(rrset);
    changed.push_back(owner);
  }
  return changed;
}

void Zone::remove_sigs(const Name& name, RRType covered) {
  auto it = data_.find(name);
  if (it == data_.end()) return;
  auto jt = it->second.find(RRType::kSIG);
  if (jt == it->second.end()) return;
  auto& rdatas = jt->second.rdatas;
  rdatas.erase(std::remove_if(rdatas.begin(), rdatas.end(),
                              [&](const Bytes& rd) {
                                try {
                                  return SigRdata::decode(rd).type_covered == covered;
                                } catch (const ParseError&) {
                                  // A SIG that does not even decode can never
                                  // verify, so dropping it is safe — but it is
                                  // never supposed to exist, so make the drop
                                  // visible instead of silent.
                                  ++malformed_sigs_dropped_;
                                  return true;
                                }
                              }),
               rdatas.end());
  if (rdatas.empty()) it->second.erase(jt);
  if (it->second.empty()) data_.erase(it);
}

std::vector<ResourceRecord> Zone::all_records() const {
  std::vector<ResourceRecord> out;
  for_each_rrset([&](const RRset& rrset) {
    for (auto& rr : rrset.to_records()) out.push_back(std::move(rr));
  });
  return out;
}

// ---------------------------------------------------------------------------
// Wire formats.
//
// v1 (legacy): origin wire name | u32 record count | records. Records are
// `ResourceRecord::to_wire` encodings in canonical order. Still read forever.
//
// v2 (SDNSZONE2): 9-byte magic "SDNSZONE2" | u8 header version (1) | origin
// wire name | u64 total record count | u32 chunk count | chunk index | chunk
// payloads. Each index entry is u32 record count, u64 byte offset (from the
// start of the payload region), u64 byte length; offsets are contiguous from
// 0 and chunks close on owner-name boundaries so each chunk is an
// independently parsable, canonically sorted run. Record encoding inside a
// chunk is identical to v1. The magic's first byte ('S' = 0x53 > 63) can
// never be a v1 leading label length, so the two formats are self-describing.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint8_t kZone2Magic[9] = {'S', 'D', 'N', 'S', 'Z', 'O', 'N', 'E', '2'};
constexpr std::uint8_t kZone2HeaderVersion = 1;
constexpr std::size_t kZone2IndexEntryBytes = 4 + 8 + 8;

bool has_zone2_magic(BytesView data) {
  return data.size() >= sizeof kZone2Magic &&
         std::memcmp(data.data(), kZone2Magic, sizeof kZone2Magic) == 0;
}

void write_record(util::Writer& w, const RRset& rrset, const Bytes& rd) {
  rrset.name.to_wire(w);
  w.u16(static_cast<std::uint16_t>(rrset.type));
  w.u16(static_cast<std::uint16_t>(RRClass::kIN));
  w.u32(rrset.ttl);
  w.lp16(rd);
}

/// One record inspected in place: views into the input, no allocation.
struct RecordScan {
  BytesView owner_raw;  ///< length-prefixed labels + root byte
  std::size_t labels = 0;
  RRType type{};
  std::uint32_t ttl = 0;
  BytesView rdata;
};

RecordScan scan_record(util::Reader& r) {
  RecordScan s;
  const BytesView whole = r.whole();
  const std::size_t start = r.pos();
  std::size_t pos = start;
  for (;;) {
    if (pos >= whole.size()) throw ParseError("truncated wire name");
    const std::uint8_t len = whole[pos++];
    if (len == 0) break;
    if (len > 63) throw ParseError("label exceeds 63 octets");
    pos += len;
    ++s.labels;
  }
  if (pos > whole.size()) throw ParseError("truncated wire name");
  if (pos - start > 255) throw ParseError("name exceeds 255 octets");
  s.owner_raw = whole.subspan(start, pos - start);
  r.seek(pos);
  s.type = static_cast<RRType>(r.u16());
  (void)r.u16();  // class: stored zones are IN-only, matching add_record
  s.ttl = r.u32();
  s.rdata = r.raw(r.u16());
  return s;
}

Name name_from_scan(const RecordScan& s) {
  std::vector<std::string> labels;
  labels.reserve(s.labels);
  std::size_t p = 0;
  for (std::size_t i = 0; i < s.labels; ++i) {
    const std::uint8_t len = s.owner_raw[p++];
    labels.emplace_back(reinterpret_cast<const char*>(s.owner_raw.data() + p), len);
    p += len;
  }
  return Name::from_labels(std::move(labels));
}

ResourceRecord record_from_scan(const RecordScan& s, Name owner) {
  ResourceRecord rr;
  rr.name = std::move(owner);
  rr.type = s.type;
  rr.ttl = s.ttl;
  rr.rdata.assign(s.rdata.begin(), s.rdata.end());
  return rr;
}

/// Bulk loader for a canonically sorted run of records. The tail of the map
/// is the maximum key, so each in-order record costs one canonical_compare
/// (usually short-circuited by raw-byte equality with the previous owner)
/// plus an amortized-O(1) emplace_hint at the end — no O(log n) lookups.
///
/// `strict` (v2 chunks) rejects any deviation: out-of-order owners or types,
/// duplicate rdatas, owners spanning chunk boundaries. Non-strict (v1 input)
/// tolerates everything add_record tolerates; an out-of-order record is
/// handed back to the caller for the general-purpose path instead.
class RunLoader {
 public:
  RunLoader(Zone::DataMap& out, const Name& origin, bool strict)
      : out_(out), origin_(origin), strict_(strict), tail_(out.end()) {}

  /// Consume one record from `r`. `boundary` marks the first record of a
  /// follow-on v2 chunk: its owner must be strictly greater than the
  /// previous chunk's last owner (owners never span chunks, which is what
  /// keeps parallel parsing deterministic). Returns the decoded record
  /// instead of inserting when non-strict input is out of order.
  std::optional<ResourceRecord> add(util::Reader& r, bool boundary) {
    const RecordScan s = scan_record(r);
    if (tail_ != out_.end() && !boundary && s.owner_raw.size() == tail_raw_.size() &&
        std::equal(s.owner_raw.begin(), s.owner_raw.end(), tail_raw_.begin())) {
      // Same owner, same spelling as the previous record: no Name built.
      append(tail_->second, s, nullptr);
      return std::nullopt;
    }
    Name owner = name_from_scan(s);
    if (tail_ != out_.end()) {
      const int c = Name::canonical_compare(tail_->first, owner);
      if (c > 0 || (c == 0 && boundary)) {
        if (strict_) {
          throw ParseError(c > 0 ? "records out of canonical order in SDNSZONE2 zone"
                                 : "owner name spans a chunk boundary in SDNSZONE2 zone");
        }
        return record_from_scan(s, std::move(owner));
      }
      if (c == 0) {  // same owner, different spelling
        tail_raw_ = s.owner_raw;
        append(tail_->second, s, strict_ ? nullptr : &owner);
        return std::nullopt;
      }
    }
    if (!owner.is_subdomain_of(origin_)) {
      throw ParseError("record outside zone in snapshot");
    }
    tail_ = out_.emplace_hint(out_.end(), std::move(owner), Zone::TypeMap{});
    tail_raw_ = s.owner_raw;
    append(tail_->second, s, &tail_->first);
    return std::nullopt;
  }

 private:
  void append(Zone::TypeMap& tm, const RecordScan& s, const Name* owner) {
    Bytes rdata(s.rdata.begin(), s.rdata.end());
    if (strict_) {
      if (!tm.empty()) {
        const auto last = std::prev(tm.end());
        if (s.type < last->first) {
          throw ParseError("record types out of canonical order in SDNSZONE2 zone");
        }
        if (s.type == last->first) {
          RRset& rrset = last->second;
          if (std::find(rrset.rdatas.begin(), rrset.rdatas.end(), rdata) !=
              rrset.rdatas.end()) {
            throw ParseError("duplicate rdata in SDNSZONE2 zone");
          }
          rrset.ttl = s.ttl;
          rrset.rdatas.push_back(std::move(rdata));
          return;
        }
      }
      RRset& rrset = tm.emplace_hint(tm.end(), s.type, RRset{})->second;
      rrset.name = owner ? *owner : name_from_scan(s);
      rrset.type = s.type;
      rrset.ttl = s.ttl;
      rrset.rdatas.push_back(std::move(rdata));
      return;
    }
    // Non-strict: add_record semantics — duplicate rdatas collapse and the
    // newest record's TTL wins.
    const auto [it, inserted] = tm.try_emplace(s.type);
    RRset& rrset = it->second;
    if (inserted) {
      rrset.name = owner ? *owner : name_from_scan(s);
      rrset.type = s.type;
    } else if (owner) {
      rrset.name = *owner;  // add_record refreshes the stored spelling
    }
    rrset.ttl = s.ttl;
    if (std::find(rrset.rdatas.begin(), rrset.rdatas.end(), rdata) ==
        rrset.rdatas.end()) {
      rrset.rdatas.push_back(std::move(rdata));
    }
  }

  Zone::DataMap& out_;
  const Name& origin_;
  const bool strict_;
  Zone::DataMap::iterator tail_;
  BytesView tail_raw_{};
};

struct Zone2Chunk {
  std::uint32_t records = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
};

struct Zone2Header {
  Name origin;
  std::uint64_t total_records = 0;
  std::vector<Zone2Chunk> chunks;
  std::size_t payload_start = 0;
  std::uint64_t payload_bytes = 0;
};

Zone2Header parse_zone2_header(BytesView data) {
  util::Reader r(data);
  r.raw(sizeof kZone2Magic);  // caller verified the magic
  if (r.u8() != kZone2HeaderVersion) {
    throw ParseError("unsupported SDNSZONE2 header version");
  }
  Zone2Header h;
  h.origin = Name::from_wire(r);
  h.total_records = r.u64();
  const std::uint32_t nchunks = r.u32();
  // Size the index before reading it so a huge count in a truncated buffer
  // fails cleanly instead of allocating.
  if (static_cast<std::uint64_t>(nchunks) * kZone2IndexEntryBytes > r.remaining()) {
    throw ParseError("truncated SDNSZONE2 chunk index");
  }
  h.chunks.reserve(nchunks);
  std::uint64_t expect_off = 0;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < nchunks; ++i) {
    Zone2Chunk c;
    c.records = r.u32();
    c.offset = r.u64();
    c.bytes = r.u64();
    if (c.records == 0) throw ParseError("empty chunk in SDNSZONE2 index");
    if (c.offset != expect_off) throw ParseError("non-contiguous SDNSZONE2 chunk index");
    if (c.bytes > data.size()) throw ParseError("oversized chunk in SDNSZONE2 index");
    expect_off += c.bytes;
    if (expect_off > data.size()) throw ParseError("SDNSZONE2 chunk index exceeds input");
    total += c.records;
    h.chunks.push_back(c);
  }
  h.payload_start = r.pos();
  h.payload_bytes = r.remaining();
  if (expect_off != h.payload_bytes) throw ParseError("SDNSZONE2 payload size mismatch");
  if (total != h.total_records) throw ParseError("SDNSZONE2 record count mismatch");
  return h;
}

/// Parse chunks [first, last) into `out`. Runs on worker threads: reports
/// failure through `error` instead of throwing across the thread boundary.
void parse_zone2_chunks(BytesView data, const Zone2Header& h, const Name& origin,
                        std::size_t first, std::size_t last, Zone::DataMap& out,
                        std::string& error) noexcept {
  try {
    RunLoader loader(out, origin, /*strict=*/true);
    for (std::size_t c = first; c < last; ++c) {
      const Zone2Chunk& m = h.chunks[c];
      util::Reader r(data.subspan(h.payload_start + m.offset, m.bytes));
      for (std::uint32_t i = 0; i < m.records; ++i) {
        loader.add(r, /*boundary=*/i == 0 && c > first);
      }
      r.expect_done();  // a chunk must span exactly its declared bytes
    }
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown error parsing SDNSZONE2 chunk";
  }
}

}  // namespace

util::Bytes Zone::to_wire_v1() const {
  util::Writer w;
  origin_.to_wire(w);
  w.u32(static_cast<std::uint32_t>(record_count()));
  // Stream straight off the map — no all_records() copy of the whole zone.
  for_each_rrset([&](const RRset& rrset) {
    for (const auto& rd : rrset.rdatas) write_record(w, rrset, rd);
  });
  return std::move(w).take();
}

util::Bytes Zone::to_wire_v2(std::size_t chunk_records) const {
  if (chunk_records == 0) chunk_records = 1;
  // Pass 1: chunk layout. A chunk closes after the owner that reaches
  // `chunk_records`, so owners never straddle chunks.
  std::vector<Zone2Chunk> chunks;
  std::uint64_t total_records = 0;
  std::uint64_t payload = 0;
  {
    Zone2Chunk cur;
    for (const auto& [name, types] : data_) {
      for (const auto& [type, rrset] : types) {
        const std::uint64_t per = rrset.name.wire_length() + 10;  // type/class/ttl/rdlen
        for (const auto& rd : rrset.rdatas) {
          cur.bytes += per + rd.size();
          ++cur.records;
          ++total_records;
        }
      }
      if (cur.records >= chunk_records) {
        cur.offset = payload;
        payload += cur.bytes;
        chunks.push_back(cur);
        cur = {};
      }
    }
    if (cur.records != 0) {
      cur.offset = payload;
      payload += cur.bytes;
      chunks.push_back(cur);
    }
  }
  util::Writer w(sizeof kZone2Magic + 1 + origin_.wire_length() + 8 + 4 +
                 chunks.size() * kZone2IndexEntryBytes + payload);
  for (const std::uint8_t b : kZone2Magic) w.u8(b);
  w.u8(kZone2HeaderVersion);
  origin_.to_wire(w);
  w.u64(total_records);
  w.u32(static_cast<std::uint32_t>(chunks.size()));
  for (const auto& c : chunks) {
    w.u32(c.records);
    w.u64(c.offset);
    w.u64(c.bytes);
  }
  // Pass 2: stream the records in the same map order the layout pass saw.
  for_each_rrset([&](const RRset& rrset) {
    for (const auto& rd : rrset.rdatas) write_record(w, rrset, rd);
  });
  return std::move(w).take();
}

Zone Zone::from_wire(util::BytesView data, unsigned threads) {
  if (has_zone2_magic(data)) return from_wire_v2(data, threads);
  return from_wire_v1(data);
}

Zone Zone::from_wire_v1(util::BytesView data) {
  util::Reader r(data);
  Zone zone(Name::from_wire(r));
  const std::uint32_t count = r.u32();
  RunLoader loader(zone.data_, zone.origin_, /*strict=*/false);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto slow = loader.add(r, /*boundary=*/false);
    if (!slow) continue;
    // Out-of-order input — not produced by our writers, but v1 never
    // promised order. Everything bulk-loaded so far stays valid; this
    // record and the rest take the general-purpose path.
    if (!zone.in_zone(slow->name)) throw ParseError("record outside zone in snapshot");
    zone.add_record(*slow);
    for (std::uint32_t j = i + 1; j < count; ++j) {
      const RecordScan s = scan_record(r);
      const ResourceRecord rr = record_from_scan(s, name_from_scan(s));
      if (!zone.in_zone(rr.name)) throw ParseError("record outside zone in snapshot");
      zone.add_record(rr);
    }
    break;
  }
  r.expect_done();
  return zone;
}

Zone Zone::from_wire_v2(util::BytesView data, unsigned threads) {
  Zone2Header h = parse_zone2_header(data);
  Zone zone(std::move(h.origin));
  const std::size_t nchunks = h.chunks.size();
  if (nchunks == 0) return zone;  // header parse verified an empty payload
  unsigned want = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (want == 0) want = 1;
  if (want > nchunks) want = static_cast<unsigned>(nchunks);
  if (want <= 1) {
    std::string error;
    parse_zone2_chunks(data, h, zone.origin_, 0, nchunks, zone.data_, error);
    if (!error.empty()) throw ParseError(error);
    return zone;
  }
  // Parallel parse: each worker builds a sorted fragment from a contiguous
  // chunk range; the main thread then verifies canonical order across every
  // fragment seam and splices the fragments with O(1) node moves. Fragments
  // are merged in chunk order, so the result is byte-for-byte independent of
  // the thread count.
  std::vector<Zone::DataMap> frags(want);
  std::vector<std::string> errors(want);
  {
    std::vector<std::thread> workers;
    workers.reserve(want);
    const std::size_t base = nchunks / want;
    const std::size_t extra = nchunks % want;
    std::size_t next = 0;
    for (unsigned wi = 0; wi < want; ++wi) {
      const std::size_t first = next;
      next += base + (wi < extra ? 1 : 0);
      const std::size_t last = next;
      workers.emplace_back([&, wi, first, last] {
        parse_zone2_chunks(data, h, zone.origin_, first, last, frags[wi], errors[wi]);
      });
    }
    for (auto& t : workers) t.join();
  }
  for (const auto& e : errors) {
    if (!e.empty()) throw ParseError(e);
  }
  for (auto& frag : frags) {
    if (frag.empty()) continue;
    if (!zone.data_.empty()) {
      const int c = Name::canonical_compare(std::prev(zone.data_.end())->first,
                                            frag.begin()->first);
      if (c > 0) throw ParseError("records out of canonical order in SDNSZONE2 zone");
      if (c == 0) throw ParseError("owner name spans a chunk boundary in SDNSZONE2 zone");
    }
    while (!frag.empty()) {
      zone.data_.insert(zone.data_.end(), frag.extract(frag.begin()));
    }
  }
  return zone;
}

void Zone::SortedInserter::add(const ResourceRecord& rr) {
  DataMap& map = zone_.data_;
  if (!map.empty()) {
    const auto tail = std::prev(map.end());
    const int c = Name::canonical_compare(tail->first, rr.name);
    if (c > 0) {  // out of order: this one record pays the O(log n) path
      zone_.add_record(rr);
      return;
    }
    if (c == 0) {
      RRset& rrset = tail->second.try_emplace(rr.type).first->second;
      rrset.name = rr.name;
      rrset.type = rr.type;
      rrset.ttl = rr.ttl;
      if (std::find(rrset.rdatas.begin(), rrset.rdatas.end(), rr.rdata) ==
          rrset.rdatas.end()) {
        rrset.rdatas.push_back(rr.rdata);
      }
      return;
    }
  }
  RRset& rrset = map.emplace_hint(map.end(), rr.name, TypeMap{})->second[rr.type];
  rrset.name = rr.name;
  rrset.type = rr.type;
  rrset.ttl = rr.ttl;
  rrset.rdatas.push_back(rr.rdata);
}

std::string Zone::to_text() const {
  std::ostringstream os;
  for_each_rrset([&](const RRset& rrset) {
    for (const auto& rr : rrset.to_records()) os << rr.to_text() << "\n";
  });
  return os.str();
}

namespace {
std::uint32_t parse_zone_u32(const std::string& s, std::size_t line_no) {
  if (s.empty()) throw ParseError("empty number at line " + std::to_string(line_no));
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw ParseError("bad number '" + s + "' at line " + std::to_string(line_no));
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xffffffffULL) {
      throw ParseError("number out of range at line " + std::to_string(line_no));
    }
  }
  return static_cast<std::uint32_t>(v);
}
}  // namespace

Zone Zone::from_text(const Name& origin, std::string_view text) {
  Zone zone(origin);
  std::uint32_t default_ttl = 3600;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    // Strip comments.
    if (auto c = line.find(';'); c != std::string_view::npos) line = line.substr(0, c);
    // Tokenize.
    std::vector<std::string> tok;
    std::string cur;
    bool quoted = false;
    for (char ch : line) {
      if (ch == '"') {
        quoted = !quoted;
        cur.push_back(ch);
        continue;
      }
      if (!quoted && (ch == ' ' || ch == '\t' || ch == '\r')) {
        if (!cur.empty()) {
          tok.push_back(std::move(cur));
          cur.clear();
        }
      } else {
        cur.push_back(ch);
      }
    }
    if (!cur.empty()) tok.push_back(std::move(cur));
    if (tok.empty()) continue;
    if (tok[0] == "$TTL") {
      if (tok.size() != 2) throw ParseError("bad $TTL at line " + std::to_string(line_no));
      default_ttl = parse_zone_u32(tok[1], line_no);
      continue;
    }
    if (tok.size() < 3) throw ParseError("short record at line " + std::to_string(line_no));

    std::size_t i = 0;
    Name owner = tok[i] == "@" ? origin : Name::parse(tok[i]);
    if (tok[i] != "@" && tok[i].back() != '.') {
      // Relative name: append origin.
      std::vector<std::string> labels;
      for (std::size_t l = 0; l < owner.label_count(); ++l) labels.push_back(owner.label(l));
      Name abs = origin;
      for (auto it = labels.rbegin(); it != labels.rend(); ++it) abs = abs.child(*it);
      owner = abs;
    }
    ++i;
    std::uint32_t ttl = default_ttl;
    if (i < tok.size() && !tok[i].empty() && tok[i][0] >= '0' && tok[i][0] <= '9') {
      ttl = parse_zone_u32(tok[i], line_no);
      ++i;
    }
    if (i < tok.size() && tok[i] == "IN") ++i;
    if (i >= tok.size()) throw ParseError("missing type at line " + std::to_string(line_no));
    const RRType type = rrtype_from_string(tok[i]);
    ++i;
    std::string rdata_text;
    for (; i < tok.size(); ++i) {
      if (!rdata_text.empty()) rdata_text.push_back(' ');
      rdata_text += tok[i];
    }
    ResourceRecord rr;
    rr.name = owner;
    rr.type = type;
    rr.ttl = ttl;
    rr.rdata = rdata_from_text(type, rdata_text);
    if (!zone.in_zone(rr.name)) {
      throw ParseError("record outside zone at line " + std::to_string(line_no));
    }
    zone.add_record(rr);
  }
  return zone;
}

}  // namespace sdns::dns
