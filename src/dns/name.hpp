// Domain names (RFC 1035 §3.1, RFC 4034 §6.1 canonical ordering).
//
// A Name is a sequence of labels, root last. Comparison is case-insensitive
// per the DNS specification; the original spelling is preserved for display.
// Canonical ordering (right-to-left by label, case-folded) drives the zone's
// NXT chain, which provides authenticated denial of existence.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace sdns::dns {

class Name {
 public:
  /// The root name (empty label sequence).
  Name() = default;

  /// Parse presentation format ("www.example.com." or relative "www").
  /// Throws util::ParseError on malformed input (bad escapes, length limits).
  static Name parse(std::string_view text);

  /// Build from raw labels (no dots/escapes interpreted).
  static Name from_labels(std::vector<std::string> labels);

  /// Parse one uncompressed wire-format name (length-prefixed labels,
  /// terminating root byte) from `r`, enforcing the 63-octet label and
  /// 255-octet name limits. Scans the bytes first so the label vector is
  /// reserved exactly once — the hot path for bulk zone loads.
  static Name from_wire(util::Reader& r);

  bool is_root() const { return labels_.empty(); }
  std::size_t label_count() const { return labels_.size(); }
  const std::string& label(std::size_t i) const { return labels_[i]; }

  /// Total wire length: sum of (1 + label length) + 1 for the root byte.
  std::size_t wire_length() const;

  /// "a.b.c." presentation form; "." for root.
  std::string to_string() const;

  /// True if this name equals `zone` or is below it.
  bool is_subdomain_of(const Name& zone) const;

  /// Name with the first `n` labels removed (moving toward the root).
  Name parent(std::size_t n = 1) const;

  /// New name with `label` prepended (one level deeper).
  Name child(std::string_view label) const;

  /// Case-folded copy (canonical form for signing and ordering).
  Name canonical() const;

  /// Append the case-folded uncompressed wire form to `out` — the
  /// allocation-free cache-key form of this name. Two spellings of the same
  /// name (RFC 1035 §2.3.3 case-insensitive match, 0x20-style mixed casing
  /// included) append identical bytes; distinct names never collide because
  /// the wire form is self-delimiting (length-prefixed labels, root byte).
  void append_canonical_key(std::string& out) const;

  /// Case-insensitive equality.
  friend bool operator==(const Name& a, const Name& b);
  friend bool operator!=(const Name& a, const Name& b) { return !(a == b); }

  /// Canonical DNS ordering (RFC 4034 §6.1): compare label sequences
  /// right-to-left, each label as case-folded octets.
  static int canonical_compare(const Name& a, const Name& b);
  friend bool operator<(const Name& a, const Name& b) {
    return canonical_compare(a, b) < 0;
  }

  /// Uncompressed wire form (for digests and canonical encodings).
  void to_wire(util::Writer& w) const;

 private:
  std::vector<std::string> labels_;  ///< leftmost label first
};

}  // namespace sdns::dns
