#include "dns/server.hpp"

#include <algorithm>
#include <set>

#include "util/log.hpp"

namespace sdns::dns {

using util::Bytes;
using util::BytesView;

AuthoritativeServer::AuthoritativeServer(Zone zone, UpdatePolicy policy,
                                         std::uint32_t signature_validity)
    : zone_(std::move(zone)),
      policy_(std::move(policy)),
      signature_validity_(signature_validity) {}

bool AuthoritativeServer::zone_is_signed() const {
  return zone_.find(zone_.origin(), RRType::kKEY) != nullptr;
}

void AuthoritativeServer::add_rrset_with_sigs(Message& response,
                                              std::vector<ResourceRecord>& section,
                                              const RRset& rrset) const {
  for (auto& rr : rrset.to_records()) section.push_back(std::move(rr));
  if (!zone_is_signed()) return;
  const RRset* sigs = zone_.find(rrset.name, RRType::kSIG);
  if (!sigs) return;
  for (const auto& rd : sigs->rdatas) {
    try {
      if (SigRdata::decode(rd).type_covered != rrset.type) continue;
    } catch (const util::ParseError&) {
      continue;
    }
    section.push_back({rrset.name, RRType::kSIG, RRClass::kIN, sigs->ttl, rd});
  }
  (void)response;
}

void AuthoritativeServer::add_denial(Message& response, const Name& qname) const {
  // SOA in authority for negative answers; NXT proves the denial when signed.
  if (const RRset* soa = zone_.find(zone_.origin(), RRType::kSOA)) {
    add_rrset_with_sigs(response, response.authority, *soa);
  }
  if (zone_is_signed()) {
    const Name pred = zone_.predecessor(qname);
    if (const RRset* nxt = zone_.find(pred, RRType::kNXT)) {
      add_rrset_with_sigs(response, response.authority, *nxt);
    }
  }
}

void AuthoritativeServer::add_additionals(Message& response) const {
  // Glue A/AAAA records for NS and MX targets mentioned in the answer.
  std::set<std::string> already;
  for (const auto& rr : response.answers) {
    already.insert(rr.name.canonical().to_string() + "/" + to_string(rr.type));
  }
  std::vector<Name> targets;
  for (const auto& rr : response.answers) {
    try {
      if (rr.type == RRType::kNS) {
        targets.push_back(NameRdata::decode(rr.rdata).target);
      } else if (rr.type == RRType::kMX) {
        targets.push_back(MxRdata::decode(rr.rdata).exchange);
      }
    } catch (const util::ParseError&) {
    }
  }
  for (const auto& target : targets) {
    if (!zone_.in_zone(target)) continue;
    for (RRType t : {RRType::kA, RRType::kAAAA}) {
      const std::string key = target.canonical().to_string() + "/" + to_string(t);
      if (already.count(key)) continue;
      if (const RRset* rrset = zone_.find(target, t)) {
        already.insert(key);
        for (auto& rr : rrset->to_records()) response.additional.push_back(std::move(rr));
      }
    }
  }
}

std::map<std::string, ResourceRecord> AuthoritativeServer::snapshot_records(
    const Zone& zone) {
  std::map<std::string, ResourceRecord> out;
  for (auto& rr : zone.all_records()) {
    util::Writer key;
    rr.to_canonical_wire(key);
    out.emplace(util::to_string(key.bytes()), std::move(rr));
  }
  return out;
}

void AuthoritativeServer::finalize_journal() {
  if (!capture_) return;
  auto before = std::move(*capture_);
  capture_.reset();
  auto after = snapshot_records(zone_);
  JournalEntry entry;
  for (const auto& [key, rr] : before) {
    if (rr.type == RRType::kSOA) {
      entry.soa_before = rr;
    } else if (!after.count(key)) {
      entry.removed.push_back(rr);
    }
  }
  for (const auto& [key, rr] : after) {
    if (rr.type == RRType::kSOA) {
      entry.soa_after = rr;
    } else if (!before.count(key)) {
      entry.added.push_back(rr);
    }
  }
  const std::uint32_t from = SoaRdata::decode(entry.soa_before.rdata).serial;
  const std::uint32_t to = SoaRdata::decode(entry.soa_after.rdata).serial;
  if (from == to) return;  // nothing observable changed
  journal_.push_back(std::move(entry));
  while (journal_.size() > journal_limit_) journal_.pop_front();
}

void AuthoritativeServer::answer_ixfr(Message& response, const Message& query,
                                      bool* used_axfr) const {
  const RRset* soa_set = zone_.find(zone_.origin(), RRType::kSOA);
  if (!soa_set || soa_set->rdatas.empty()) {
    response.rcode = Rcode::kServFail;
    return;
  }
  const ResourceRecord current_soa = soa_set->to_records().front();
  const std::uint32_t current = SoaRdata::decode(current_soa.rdata).serial;
  // The client's serial travels in the authority section's SOA (RFC 1995).
  std::optional<std::uint32_t> client_serial;
  for (const auto& rr : query.authority) {
    if (rr.type == RRType::kSOA) {
      try {
        client_serial = SoaRdata::decode(rr.rdata).serial;
      } catch (const util::ParseError&) {
      }
      break;
    }
  }
  if (client_serial && *client_serial == current) {
    response.answers.push_back(current_soa);  // already up to date
    return;
  }
  // Find the journal suffix starting at the client's serial.
  std::size_t start = journal_.size();
  if (client_serial) {
    for (std::size_t i = 0; i < journal_.size(); ++i) {
      if (SoaRdata::decode(journal_[i].soa_before.rdata).serial == *client_serial) {
        start = i;
        break;
      }
    }
  }
  if (!client_serial || start == journal_.size()) {
    if (used_axfr) *used_axfr = true;
    answer_axfr(response);  // too old (or no serial given): full transfer
    return;
  }
  response.answers.push_back(current_soa);
  for (std::size_t i = start; i < journal_.size(); ++i) {
    const JournalEntry& e = journal_[i];
    response.answers.push_back(e.soa_before);
    for (const auto& rr : e.removed) response.answers.push_back(rr);
    response.answers.push_back(e.soa_after);
    for (const auto& rr : e.added) response.answers.push_back(rr);
  }
  response.answers.push_back(current_soa);
}

void AuthoritativeServer::answer_axfr(Message& response) const {
  // AXFR framing: the SOA leads and trails the record stream (RFC 5936).
  const RRset* soa = zone_.find(zone_.origin(), RRType::kSOA);
  if (!soa || soa->rdatas.empty()) {
    response.rcode = Rcode::kServFail;
    return;
  }
  const ResourceRecord soa_rr = soa->to_records().front();
  response.answers.push_back(soa_rr);
  for (auto& rr : zone_.all_records()) {
    if (rr.type == RRType::kSOA) continue;
    response.answers.push_back(std::move(rr));
  }
  response.answers.push_back(soa_rr);
}

std::vector<Message> AuthoritativeServer::answer_xfr(const Message& query,
                                                     std::size_t max_wire,
                                                     bool* used_axfr) const {
  if (used_axfr) *used_axfr = false;
  Message full = Message::make_response(query);
  full.aa = true;
  if (query.opcode != Opcode::kQuery || query.questions.size() != 1) {
    full.rcode = query.questions.empty() ? Rcode::kFormErr : Rcode::kNotImp;
    return {std::move(full)};
  }
  const Question& q = query.questions.front();
  if ((q.type != RRType::kAXFR && q.type != RRType::kIXFR) ||
      !(q.name == zone_.origin()) ||
      (q.klass != RRClass::kIN && q.klass != RRClass::kANY)) {
    full.rcode = Rcode::kRefused;
    return {std::move(full)};
  }
  if (q.type == RRType::kAXFR) {
    if (used_axfr) *used_axfr = true;
    answer_axfr(full);
  } else {
    answer_ixfr(full, query, used_axfr);
  }
  if (full.rcode != Rcode::kNoError || max_wire == 0) return {std::move(full)};

  // Chunk the record stream into RFC 5936 envelopes. A record's canonical
  // (uncompressed) wire size bounds its encoded size from above — compression
  // only shrinks — so summing canonical sizes against the budget guarantees
  // each envelope encodes below max_wire. The first envelope always carries
  // at least two records when the stream has more than one, so a receiver
  // can tell "single SOA = up to date" apart from a chunked transfer.
  Message skeleton = full;
  skeleton.answers.clear();
  const std::size_t base = skeleton.encode().size();
  std::vector<Message> out;
  Message cur = skeleton;
  std::size_t cur_size = base;
  for (std::size_t i = 0; i < full.answers.size(); ++i) {
    util::Writer w;
    full.answers[i].to_canonical_wire(w);
    const std::size_t rr_size = w.bytes().size();
    const bool keep_pair = out.empty() && cur.answers.size() == 1;
    if (!cur.answers.empty() && !keep_pair && cur_size + rr_size > max_wire) {
      out.push_back(std::move(cur));
      cur = skeleton;
      cur_size = base;
    }
    cur.answers.push_back(full.answers[i]);
    cur_size += rr_size;
  }
  out.push_back(std::move(cur));
  return out;
}

std::optional<Name> AuthoritativeServer::wildcard_for(const Name& qname) const {
  // Walk toward the origin; the first ancestor owning a "*" child whose
  // subtree could cover qname provides the synthesis source (RFC 1034
  // §4.3.2, simplified: no empty-non-terminal blocking below the encloser).
  const std::size_t origin_labels = zone_.origin().label_count();
  for (std::size_t up = 1; qname.label_count() - up >= origin_labels; ++up) {
    const Name ancestor = qname.parent(up);
    const Name wildcard = ancestor.child("*");
    if (zone_.name_exists(wildcard)) return wildcard;
    if (zone_.name_exists(ancestor)) break;  // real node shadows wildcards above
  }
  return std::nullopt;
}

Message AuthoritativeServer::answer_query(const Message& query,
                                          std::size_t max_udp_size) const {
  Message response = Message::make_response(query);
  response.aa = true;
  if (query.opcode != Opcode::kQuery || query.questions.size() != 1) {
    response.rcode = query.questions.empty() ? Rcode::kFormErr : Rcode::kNotImp;
    return response;
  }
  const Question& q = query.questions.front();
  if (q.klass != RRClass::kIN && q.klass != RRClass::kANY) {
    response.rcode = Rcode::kRefused;
    return response;
  }
  if (!zone_.in_zone(q.name)) {
    response.aa = false;
    response.rcode = Rcode::kRefused;  // not authoritative for that name
    return response;
  }
  if (q.type == RRType::kAXFR || q.type == RRType::kIXFR) {
    if (!(q.name == zone_.origin())) {
      response.rcode = Rcode::kRefused;
    } else if (q.type == RRType::kAXFR) {
      answer_axfr(response);
    } else {
      answer_ixfr(response, query);
    }
    return response;
  }

  Name qname = q.name;
  // CNAME chasing (bounded; single zone cannot loop more than its size).
  for (std::size_t hops = 0; hops <= zone_.rrset_count(); ++hops) {
    if (!zone_.name_exists(qname)) {
      // Wildcard synthesis before declaring the name nonexistent.
      if (auto wildcard = wildcard_for(qname)) {
        bool answered = false;
        for (const auto& rrset : zone_.rrsets_at(*wildcard)) {
          const bool wanted = q.type == RRType::kANY ? rrset.type != RRType::kSIG &&
                                                           rrset.type != RRType::kNXT
                                                     : rrset.type == q.type;
          if (!wanted) continue;
          add_rrset_with_sigs(response, response.answers, rrset);
          // Rewrite the owners we just appended to qname; the SIG rdata
          // stays byte-identical (its labels field lets verifiers
          // reconstruct the wildcard owner).
          for (auto& rr : response.answers) {
            if (rr.name == *wildcard) rr.name = qname;
          }
          answered = true;
        }
        if (answered) {
          add_additionals(response);
          if (max_udp_size && response.encode().size() > max_udp_size) {
            response.answers.clear();
            response.authority.clear();
            response.additional.clear();
            response.tc = true;
          }
          return response;
        }
      }
      response.rcode = Rcode::kNxDomain;
      add_denial(response, qname);
      return response;
    }
    const auto finish = [&]() -> Message {
      add_additionals(response);
      if (max_udp_size && response.encode().size() > max_udp_size) {
        response.answers.clear();
        response.authority.clear();
        response.additional.clear();
        response.tc = true;
      }
      return response;
    };
    if (q.type == RRType::kANY) {
      for (const auto& rrset : zone_.rrsets_at(qname)) {
        if (rrset.type == RRType::kSIG) continue;
        add_rrset_with_sigs(response, response.answers, rrset);
      }
      return finish();
    }
    if (const RRset* rrset = zone_.find(qname, q.type)) {
      add_rrset_with_sigs(response, response.answers, *rrset);
      return finish();
    }
    const RRset* cname = zone_.find(qname, RRType::kCNAME);
    if (cname && q.type != RRType::kCNAME && !cname->rdatas.empty()) {
      add_rrset_with_sigs(response, response.answers, *cname);
      const Name target = NameRdata::decode(cname->rdatas.front()).target;
      if (!zone_.in_zone(target)) return response;  // out-of-zone target
      qname = target;
      continue;
    }
    // Name exists but type does not: NOERROR / NODATA.
    add_denial(response, qname);
    return response;
  }
  response.rcode = Rcode::kServFail;  // CNAME loop
  return response;
}

Message AuthoritativeServer::update_response(const Message& update, Rcode rcode) {
  Message response = Message::make_response(update);
  response.rcode = rcode;
  return response;
}

UpdateResult AuthoritativeServer::apply_update(const Message& update, std::uint32_t now) {
  UpdateResult result;

  Message req = update;  // TSIG verification strips the signature record
  if (policy_.require_tsig) {
    TsigVerifyOptions topt;
    topt.now = policy_.tsig_clock;
    topt.fudge = policy_.tsig_fudge;
    const TsigStatus status = tsig_verify(
        req,
        [&](const std::string& name) {
          for (const auto& key : policy_.keys) {
            if (key.name == name) return std::optional<Bytes>(key.secret);
          }
          return std::optional<Bytes>();
        },
        topt);
    if (status != TsigStatus::kOk) {
      SDNS_LOG_DEBUG("update rejected: TSIG status ", static_cast<int>(status));
      // BADTIME answers NOTAUTH (RFC 2845 §4.5.2 maps TSIG errors onto it);
      // everything else stays the generic policy refusal.
      result.rcode =
          status == TsigStatus::kBadTime ? Rcode::kNotAuth : Rcode::kRefused;
      return result;
    }
  }

  if (req.opcode != Opcode::kUpdate || req.questions.size() != 1) {
    result.rcode = Rcode::kFormErr;
    return result;
  }
  const Question& zone_section = req.questions.front();
  if (zone_section.type != RRType::kSOA || !(zone_section.name == zone_.origin())) {
    result.rcode = Rcode::kNotZone;
    return result;
  }

  // ---- prerequisites (RFC 2136 §2.4, §3.2) ----
  // Value-dependent prerequisites are grouped into temporary RRsets.
  std::map<std::pair<std::string, std::uint16_t>, std::vector<Bytes>> required_rrsets;
  for (const auto& rr : req.prerequisites()) {
    if (rr.ttl != 0 || !zone_.in_zone(rr.name)) {
      result.rcode = Rcode::kFormErr;
      return result;
    }
    switch (rr.klass) {
      case RRClass::kANY:
        if (!rr.rdata.empty()) {
          result.rcode = Rcode::kFormErr;
          return result;
        }
        if (rr.type == RRType::kANY) {
          if (!zone_.name_exists(rr.name)) {
            result.rcode = Rcode::kNxDomain;
            return result;
          }
        } else if (!zone_.find(rr.name, rr.type)) {
          result.rcode = Rcode::kNxRRset;
          return result;
        }
        break;
      case RRClass::kNONE:
        if (!rr.rdata.empty()) {
          result.rcode = Rcode::kFormErr;
          return result;
        }
        if (rr.type == RRType::kANY) {
          if (zone_.name_exists(rr.name)) {
            result.rcode = Rcode::kYxDomain;
            return result;
          }
        } else if (zone_.find(rr.name, rr.type)) {
          result.rcode = Rcode::kYxRRset;
          return result;
        }
        break;
      case RRClass::kIN:
        required_rrsets[{rr.name.canonical().to_string(),
                         static_cast<std::uint16_t>(rr.type)}]
            .push_back(rr.rdata);
        break;
      default:
        result.rcode = Rcode::kFormErr;
        return result;
    }
  }
  for (auto& [key, rdatas] : required_rrsets) {
    const Name name = Name::parse(key.first);
    const RRType type = static_cast<RRType>(key.second);
    const RRset* existing = zone_.find(name, type);
    if (!existing) {
      result.rcode = Rcode::kNxRRset;
      return result;
    }
    auto want = rdatas;
    auto have = existing->rdatas;
    std::sort(want.begin(), want.end());
    std::sort(have.begin(), have.end());
    if (want != have) {
      result.rcode = Rcode::kNxRRset;
      return result;
    }
  }

  // ---- update-section prescan (RFC 2136 §3.4.1) ----
  for (const auto& rr : req.updates()) {
    if (!zone_.in_zone(rr.name)) {
      result.rcode = Rcode::kNotZone;
      return result;
    }
    const bool meta = rr.type == RRType::kANY || rr.type == RRType::kSIG ||
                      rr.type == RRType::kNXT || rr.type == RRType::kTSIG;
    switch (rr.klass) {
      case RRClass::kIN:
        if (rr.type == RRType::kANY || rr.type == RRType::kSIG ||
            rr.type == RRType::kNXT) {
          result.rcode = Rcode::kFormErr;
          return result;
        }
        break;
      case RRClass::kANY:
        if (!rr.rdata.empty() || rr.ttl != 0 ||
            (meta && rr.type != RRType::kANY)) {
          result.rcode = Rcode::kFormErr;
          return result;
        }
        break;
      case RRClass::kNONE:
        if (rr.ttl != 0) {
          result.rcode = Rcode::kFormErr;
          return result;
        }
        break;
      default:
        result.rcode = Rcode::kFormErr;
        return result;
    }
  }

  // ---- apply (RFC 2136 §3.4.2) ----
  capture_ = snapshot_records(zone_);  // journal baseline for IXFR
  std::set<std::pair<std::string, std::uint16_t>> touched;
  auto touch = [&](const Name& name, RRType type) {
    touched.insert({name.to_string(), static_cast<std::uint16_t>(type)});
  };
  for (const auto& rr : req.updates()) {
    switch (rr.klass) {
      case RRClass::kIN:
        if (rr.type == RRType::kSOA) {
          // SOA add replaces the existing SOA if the serial is newer.
          auto current = zone_.soa();
          const SoaRdata incoming = SoaRdata::decode(rr.rdata);
          if (current && incoming.serial <= current->serial) break;
          zone_.remove_rrset(zone_.origin(), RRType::kSOA);
          zone_.add_record(rr);
          touch(rr.name, rr.type);
        } else if (rr.type == RRType::kCNAME) {
          // CNAME may not coexist with other data (simplified RFC 2136 rule).
          bool other = false;
          for (const auto& rrset : zone_.rrsets_at(rr.name)) {
            if (rrset.type != RRType::kCNAME && rrset.type != RRType::kSIG &&
                rrset.type != RRType::kNXT) {
              other = true;
            }
          }
          if (other) break;  // silently ignored per RFC 2136
          zone_.add_record(rr);
          touch(rr.name, rr.type);
        } else {
          if (zone_.find(rr.name, RRType::kCNAME) && rr.type != RRType::kSIG &&
              rr.type != RRType::kNXT) {
            break;  // data may not be added beside a CNAME
          }
          zone_.add_record(rr);
          touch(rr.name, rr.type);
        }
        break;
      case RRClass::kANY:
        if (rr.type == RRType::kANY) {
          if (rr.name == zone_.origin()) {
            // Apex: everything except SOA/NS (and DNSSEC meta) goes.
            for (const auto& rrset : zone_.rrsets_at(rr.name)) {
              if (rrset.type == RRType::kSOA || rrset.type == RRType::kNS ||
                  rrset.type == RRType::kSIG || rrset.type == RRType::kNXT ||
                  rrset.type == RRType::kKEY) {
                continue;
              }
              zone_.remove_rrset(rr.name, rrset.type);
              touch(rr.name, rrset.type);
            }
          } else {
            for (const auto& rrset : zone_.rrsets_at(rr.name)) {
              if (rrset.type == RRType::kSIG || rrset.type == RRType::kNXT) continue;
              zone_.remove_rrset(rr.name, rrset.type);
              touch(rr.name, rrset.type);
            }
          }
        } else {
          if (rr.name == zone_.origin() &&
              (rr.type == RRType::kSOA || rr.type == RRType::kNS)) {
            break;  // protected at apex
          }
          if (zone_.remove_rrset(rr.name, rr.type)) touch(rr.name, rr.type);
        }
        break;
      case RRClass::kNONE: {
        if (rr.type == RRType::kSOA) break;
        if (rr.name == zone_.origin() && rr.type == RRType::kNS) {
          const RRset* ns = zone_.find(rr.name, RRType::kNS);
          if (ns && ns->rdatas.size() <= 1) break;  // keep the last apex NS
        }
        if (zone_.remove_record(rr.name, rr.type, rr.rdata)) touch(rr.name, rr.type);
        break;
      }
      default:
        break;
    }
  }

  if (touched.empty()) {
    capture_.reset();                // nothing changed: no journal entry
    result.rcode = Rcode::kNoError;  // no-op update succeeds
    return result;
  }

  zone_.bump_serial();
  touch(zone_.origin(), RRType::kSOA);

  // Clean SIG records of vanished or changed RRsets; regenerate below.
  for (const auto& [name_text, type_raw] : touched) {
    const Name name = Name::parse(name_text);
    zone_.remove_sigs(name, static_cast<RRType>(type_raw));
  }

  for (const auto& [name_text, type_raw] : touched) {
    result.changed_names.push_back(Name::parse(name_text));
  }

  if (!zone_is_signed()) {
    finalize_journal();  // unsigned zones commit immediately
    return result;
  }

  // NXT chain maintenance adds its own changed RRsets.
  std::vector<Name> nxt_changed = zone_.rebuild_nxt_chain();
  // Remove NXT at deleted names happens implicitly (name removal drops all
  // rrsets); but a deleted name may leave a stale NXT if other types remain —
  // rebuild handles that too.
  for (const auto& n : nxt_changed) {
    touched.insert({n.to_string(), static_cast<std::uint16_t>(RRType::kNXT)});
    zone_.remove_sigs(n, RRType::kNXT);
  }

  const KeyRdata key =
      KeyRdata::decode(zone_.find(zone_.origin(), RRType::kKEY)->rdatas.front());
  const std::uint16_t tag = key_tag(key);
  // Deterministic task order: (canonical owner, type).
  std::vector<std::pair<Name, RRType>> to_sign;
  for (const auto& [name_text, type_raw] : touched) {
    to_sign.emplace_back(Name::parse(name_text), static_cast<RRType>(type_raw));
  }
  std::sort(to_sign.begin(), to_sign.end(), [](const auto& a, const auto& b) {
    const int c = Name::canonical_compare(a.first, b.first);
    if (c != 0) return c < 0;
    return static_cast<std::uint16_t>(a.second) < static_cast<std::uint16_t>(b.second);
  });
  for (const auto& [name, type] : to_sign) {
    const RRset* rrset = zone_.find(name, type);
    if (!rrset) continue;  // deleted rrset: nothing to sign
    result.sig_tasks.push_back(
        make_sig_task(*rrset, zone_.origin(), tag, now, now + signature_validity_));
  }
  return result;
}

void AuthoritativeServer::install_signature(const SigTask& task, Bytes signature_bytes) {
  zone_.remove_sigs(task.owner, task.sig.type_covered);
  zone_.add_record(finish_sig_task(task, std::move(signature_bytes)));
}

}  // namespace sdns::dns
