#include "dns/xfr.hpp"

namespace sdns::dns {

int serial_compare(std::uint32_t a, std::uint32_t b) {
  if (a == b) return 0;
  constexpr std::uint32_t kHalf = 0x80000000u;
  const std::uint32_t diff = b - a;  // modular
  if (diff == kHalf) return 0;       // RFC 1982: incomparable
  return diff < kHalf ? -1 : 1;
}

Message make_ixfr_query(std::uint16_t id, const Name& zone, const SoaRdata& current_soa) {
  Message q;
  q.id = id;
  q.questions.push_back({zone, RRType::kIXFR, RRClass::kIN});
  ResourceRecord soa;
  soa.name = zone;
  soa.type = RRType::kSOA;
  soa.ttl = 0;
  soa.rdata = current_soa.encode();
  q.authority.push_back(std::move(soa));
  return q;
}

Message make_notify(std::uint16_t id, const Name& zone,
                    const ResourceRecord* current_soa) {
  Message m;
  m.id = id;
  m.opcode = Opcode::kNotify;
  m.aa = true;
  m.questions.push_back({zone, RRType::kSOA, RRClass::kIN});
  if (current_soa) m.answers.push_back(*current_soa);
  return m;
}

namespace {

bool is_soa(const ResourceRecord& rr) { return rr.type == RRType::kSOA; }

XfrOutcome apply_axfr(Zone& zone, const Message& response) {
  Zone fresh(zone.origin());
  // SOA leads and trails; every record in between (including the leading
  // SOA, excluding the trailing duplicate) goes into the new zone. Our
  // answer_axfr emits canonical order (modulo the SOA-first framing), so
  // bulk-load through SortedInserter; out-of-order records from foreign
  // primaries just fall back to the general path one record at a time.
  Zone::SortedInserter inserter(fresh);
  for (std::size_t i = 0; i + 1 < response.answers.size(); ++i) {
    const ResourceRecord& rr = response.answers[i];
    if (!fresh.in_zone(rr.name)) return XfrOutcome::kMalformed;
    inserter.add(rr);
  }
  zone = std::move(fresh);
  return XfrOutcome::kReplacedAxfr;
}

}  // namespace

XfrOutcome apply_xfr_response(Zone& zone, const Message& response) {
  const auto& rrs = response.answers;
  if (rrs.empty() || !is_soa(rrs.front())) return XfrOutcome::kMalformed;
  if (rrs.size() == 1) return XfrOutcome::kUpToDate;
  if (!is_soa(rrs.back())) return XfrOutcome::kMalformed;
  // IXFR responses have a SOA as the *second* record (the first diff's
  // old-serial marker); AXFR responses have zone data there.
  if (!is_soa(rrs[1])) return apply_axfr(zone, response);

  // IXFR: new-SOA, then (old-SOA, deletions..., new-SOA, additions...)*,
  // terminated by the new SOA.
  const SoaRdata target = SoaRdata::decode(rrs.front().rdata);
  std::size_t i = 1;
  while (i < rrs.size() - 1 || (i == rrs.size() - 1 && !is_soa(rrs[i]))) {
    if (!is_soa(rrs[i])) return XfrOutcome::kMalformed;
    const SoaRdata from = SoaRdata::decode(rrs[i].rdata);
    auto current = zone.soa();
    if (!current || current->serial != from.serial) return XfrOutcome::kMalformed;
    ++i;
    // Deletions until the next SOA.
    while (i < rrs.size() && !is_soa(rrs[i])) {
      zone.remove_record(rrs[i].name, rrs[i].type, rrs[i].rdata);
      ++i;
    }
    if (i >= rrs.size()) return XfrOutcome::kMalformed;
    const ResourceRecord new_soa_rr = rrs[i];
    const SoaRdata to = SoaRdata::decode(new_soa_rr.rdata);
    ++i;
    // Additions until the next SOA (or end marker).
    zone.remove_rrset(zone.origin(), RRType::kSOA);
    zone.add_record(new_soa_rr);
    while (i < rrs.size() && !is_soa(rrs[i])) {
      if (!zone.in_zone(rrs[i].name)) return XfrOutcome::kMalformed;
      zone.add_record(rrs[i]);
      ++i;
    }
    if (to.serial == target.serial && i == rrs.size() - 1) break;
  }
  auto final_soa = zone.soa();
  if (!final_soa || final_soa->serial != target.serial) return XfrOutcome::kMalformed;
  return XfrOutcome::kAppliedIxfr;
}

XfrAssembler::State XfrAssembler::step(const ResourceRecord& rr) {
  const bool soa = is_soa(rr);
  try {
    if (records_seen_ == 0) {
      // The stream must open with the current SOA — its serial is the
      // transfer target every later completion check closes against.
      if (!soa) return state_ = State::kMalformed;
      target_serial_ = SoaRdata::decode(rr.rdata).serial;
    } else if (mode_ == Mode::kUnknown) {
      // Second record decides the format: SOA means IXFR diffs (it is the
      // first diff's old-serial marker), anything else means AXFR data.
      mode_ = soa ? Mode::kIxfrDeletions : Mode::kAxfr;
    } else if (mode_ == Mode::kAxfr) {
      if (soa) state_ = State::kDone;  // trailing SOA closes the transfer
    } else if (mode_ == Mode::kIxfrDeletions) {
      if (soa) mode_ = Mode::kIxfrAdditions;  // the diff's new-serial marker
    } else {  // kIxfrAdditions
      if (soa) {
        if (SoaRdata::decode(rr.rdata).serial == target_serial_) {
          state_ = State::kDone;  // closing SOA(target)
        } else {
          mode_ = Mode::kIxfrDeletions;  // next diff's old-serial marker
        }
      }
    }
  } catch (const util::ParseError&) {
    return state_ = State::kMalformed;
  }
  ++records_seen_;
  return state_;
}

XfrAssembler::State XfrAssembler::feed(const Message& envelope) {
  if (state_ != State::kContinue) return state_ = State::kMalformed;
  const bool first = records_seen_ == 0;
  if (first) {
    combined_ = envelope;  // keep the first envelope's header and question
    combined_.answers.clear();
    if (envelope.rcode != Rcode::kNoError) {
      // An error reply is complete in itself; the caller reads the rcode.
      return state_ = State::kDone;
    }
  }
  if (envelope.answers.empty()) return state_ = State::kMalformed;
  for (const auto& rr : envelope.answers) {
    if (state_ == State::kDone) return state_ = State::kMalformed;  // trailing data
    if (step(rr) == State::kMalformed) return state_;
    combined_.answers.push_back(rr);
  }
  // A first envelope that is a lone SOA is the whole reply: already up to
  // date (the chunker guarantees multi-envelope streams open with >= 2).
  if (state_ == State::kContinue && first && records_seen_ == 1) {
    state_ = State::kDone;
  }
  return state_;
}

}  // namespace sdns::dns
