#include "dns/xfr.hpp"

namespace sdns::dns {

int serial_compare(std::uint32_t a, std::uint32_t b) {
  if (a == b) return 0;
  constexpr std::uint32_t kHalf = 0x80000000u;
  const std::uint32_t diff = b - a;  // modular
  if (diff == kHalf) return 0;       // RFC 1982: incomparable
  return diff < kHalf ? -1 : 1;
}

Message make_ixfr_query(std::uint16_t id, const Name& zone, const SoaRdata& current_soa) {
  Message q;
  q.id = id;
  q.questions.push_back({zone, RRType::kIXFR, RRClass::kIN});
  ResourceRecord soa;
  soa.name = zone;
  soa.type = RRType::kSOA;
  soa.ttl = 0;
  soa.rdata = current_soa.encode();
  q.authority.push_back(std::move(soa));
  return q;
}

namespace {

bool is_soa(const ResourceRecord& rr) { return rr.type == RRType::kSOA; }

XfrOutcome apply_axfr(Zone& zone, const Message& response) {
  Zone fresh(zone.origin());
  // SOA leads and trails; every record in between (including the leading
  // SOA, excluding the trailing duplicate) goes into the new zone.
  for (std::size_t i = 0; i + 1 < response.answers.size(); ++i) {
    const ResourceRecord& rr = response.answers[i];
    if (!fresh.in_zone(rr.name)) return XfrOutcome::kMalformed;
    fresh.add_record(rr);
  }
  zone = std::move(fresh);
  return XfrOutcome::kReplacedAxfr;
}

}  // namespace

XfrOutcome apply_xfr_response(Zone& zone, const Message& response) {
  const auto& rrs = response.answers;
  if (rrs.empty() || !is_soa(rrs.front())) return XfrOutcome::kMalformed;
  if (rrs.size() == 1) return XfrOutcome::kUpToDate;
  if (!is_soa(rrs.back())) return XfrOutcome::kMalformed;
  // IXFR responses have a SOA as the *second* record (the first diff's
  // old-serial marker); AXFR responses have zone data there.
  if (!is_soa(rrs[1])) return apply_axfr(zone, response);

  // IXFR: new-SOA, then (old-SOA, deletions..., new-SOA, additions...)*,
  // terminated by the new SOA.
  const SoaRdata target = SoaRdata::decode(rrs.front().rdata);
  std::size_t i = 1;
  while (i < rrs.size() - 1 || (i == rrs.size() - 1 && !is_soa(rrs[i]))) {
    if (!is_soa(rrs[i])) return XfrOutcome::kMalformed;
    const SoaRdata from = SoaRdata::decode(rrs[i].rdata);
    auto current = zone.soa();
    if (!current || current->serial != from.serial) return XfrOutcome::kMalformed;
    ++i;
    // Deletions until the next SOA.
    while (i < rrs.size() && !is_soa(rrs[i])) {
      zone.remove_record(rrs[i].name, rrs[i].type, rrs[i].rdata);
      ++i;
    }
    if (i >= rrs.size()) return XfrOutcome::kMalformed;
    const ResourceRecord new_soa_rr = rrs[i];
    const SoaRdata to = SoaRdata::decode(new_soa_rr.rdata);
    ++i;
    // Additions until the next SOA (or end marker).
    zone.remove_rrset(zone.origin(), RRType::kSOA);
    zone.add_record(new_soa_rr);
    while (i < rrs.size() && !is_soa(rrs[i])) {
      if (!zone.in_zone(rrs[i].name)) return XfrOutcome::kMalformed;
      zone.add_record(rrs[i]);
      ++i;
    }
    if (to.serial == target.serial && i == rrs.size() - 1) break;
  }
  auto final_soa = zone.soa();
  if (!final_soa || final_soa->serial != target.serial) return XfrOutcome::kMalformed;
  return XfrOutcome::kAppliedIxfr;
}

}  // namespace sdns::dns
