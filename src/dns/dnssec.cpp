#include "dns/dnssec.hpp"

#include <algorithm>

namespace sdns::dns {

using util::Bytes;
using util::BytesView;
using util::Writer;

std::uint16_t key_tag(const KeyRdata& key) {
  const Bytes rdata = key.encode();
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < rdata.size(); ++i) {
    acc += (i & 1) ? rdata[i] : static_cast<std::uint32_t>(rdata[i]) << 8;
  }
  acc += (acc >> 16) & 0xffff;
  return static_cast<std::uint16_t>(acc & 0xffff);
}

ResourceRecord make_zone_key_record(const Name& zone, std::uint32_t ttl,
                                    const crypto::RsaPublicKey& pub) {
  KeyRdata key;
  key.public_key = pub.encode();
  ResourceRecord rr;
  rr.name = zone;
  rr.type = RRType::kKEY;
  rr.ttl = ttl;
  rr.rdata = key.encode();
  return rr;
}

crypto::RsaPublicKey zone_key_from_record(const KeyRdata& key) {
  return crypto::RsaPublicKey::decode(key.public_key);
}

namespace {

/// RFC 2535 §4.1.8: data = SIG RDATA (sans signature) || canonical RRs.
Bytes signing_data(const SigRdata& sig, const RRset& rrset) {
  Writer w;
  w.raw(sig.presignature_prefix());
  std::vector<Bytes> rdatas = rrset.rdatas;
  std::sort(rdatas.begin(), rdatas.end());
  const Name owner = rrset.name.canonical();
  for (const auto& rd : rdatas) {
    owner.to_wire(w);
    w.u16(static_cast<std::uint16_t>(rrset.type));
    w.u16(static_cast<std::uint16_t>(RRClass::kIN));
    w.u32(sig.original_ttl);
    w.lp16(rd);
  }
  return std::move(w).take();
}

}  // namespace

SigTask make_sig_task(const RRset& rrset, const Name& signer, std::uint16_t tag,
                      std::uint32_t inception, std::uint32_t expiration) {
  SigTask task;
  task.owner = rrset.name;
  task.ttl = rrset.ttl;
  task.sig.type_covered = rrset.type;
  task.sig.algorithm = 5;  // RSA/SHA-1
  // Wildcard owners ("*.x") record the label count *without* the asterisk,
  // which is how verifiers of synthesized records reconstruct the owner the
  // signature actually covers (RFC 2535 §4.1.3 / RFC 4034 §3.1.3).
  std::size_t labels = rrset.name.label_count();
  if (labels > 0 && rrset.name.label(0) == "*") --labels;
  task.sig.labels = static_cast<std::uint8_t>(labels);
  task.sig.original_ttl = rrset.ttl;
  task.sig.inception = inception;
  task.sig.expiration = expiration;
  task.sig.key_tag = tag;
  task.sig.signer = signer;
  task.data = signing_data(task.sig, rrset);
  return task;
}

ResourceRecord finish_sig_task(const SigTask& task, Bytes signature) {
  SigRdata sig = task.sig;
  sig.signature = std::move(signature);
  ResourceRecord rr;
  rr.name = task.owner;
  rr.type = RRType::kSIG;
  rr.ttl = task.ttl;
  rr.rdata = sig.encode();
  return rr;
}

bool verify_rrset_sig(const RRset& rrset, const SigRdata& sig,
                      const crypto::RsaPublicKey& pub) {
  if (sig.type_covered != rrset.type) return false;
  RRset normalized = rrset;
  normalized.ttl = sig.original_ttl;
  // Fewer labels in the SIG than in the owner: the records were synthesized
  // from a wildcard; verify against the wildcard owner.
  if (sig.labels < rrset.name.label_count()) {
    normalized.name =
        rrset.name.parent(rrset.name.label_count() - sig.labels).child("*");
  }
  const Bytes data = signing_data(sig, normalized);
  return crypto::rsa_verify_sha1(pub, data, sig.signature);
}

ResourceRecord sign_rrset(const RRset& rrset, const Name& signer, std::uint16_t tag,
                          std::uint32_t inception, std::uint32_t expiration,
                          const SignFn& sign) {
  SigTask task = make_sig_task(rrset, signer, tag, inception, expiration);
  return finish_sig_task(task, sign(task.data));
}

std::size_t sign_zone(Zone& zone, const crypto::RsaPublicKey& pub, std::uint32_t inception,
                      std::uint32_t expiration, const SignFn& sign) {
  const std::uint32_t key_ttl = [&] {
    auto soa = zone.soa();
    return soa ? soa->minimum : 300u;
  }();
  zone.add_record(make_zone_key_record(zone.origin(), key_ttl, pub));
  zone.rebuild_nxt_chain();

  const KeyRdata key = KeyRdata::decode(
      zone.find(zone.origin(), RRType::kKEY)->rdatas.front());
  const std::uint16_t tag = key_tag(key);

  // Collect targets first: signing mutates the zone (adds SIG RRsets).
  std::vector<RRset> targets;
  zone.for_each_rrset([&](const RRset& rrset) {
    if (rrset.type != RRType::kSIG) targets.push_back(rrset);
  });
  for (const auto& rrset : targets) {
    zone.remove_sigs(rrset.name, rrset.type);
    zone.add_record(
        sign_rrset(rrset, zone.origin(), tag, inception, expiration, sign));
  }
  return targets.size();
}

ZoneVerifyResult verify_zone(const Zone& zone) {
  ZoneVerifyResult result;
  const RRset* key_rrset = zone.find(zone.origin(), RRType::kKEY);
  if (!key_rrset || key_rrset->rdatas.empty()) {
    result.first_error = "zone has no apex KEY record";
    return result;
  }
  crypto::RsaPublicKey pub;
  try {
    pub = zone_key_from_record(KeyRdata::decode(key_rrset->rdatas.front()));
  } catch (const util::ParseError& e) {
    result.first_error = std::string("bad KEY record: ") + e.what();
    return result;
  }

  // Every non-SIG RRset must have a verifying SIG at its owner.
  bool ok = true;
  zone.for_each_rrset([&](const RRset& rrset) {
    if (!ok || rrset.type == RRType::kSIG) return;
    const RRset* sigs = zone.find(rrset.name, RRType::kSIG);
    bool verified = false;
    if (sigs) {
      for (const auto& rd : sigs->rdatas) {
        try {
          const SigRdata sig = SigRdata::decode(rd);
          if (sig.type_covered != rrset.type) continue;
          if (verify_rrset_sig(rrset, sig, pub)) {
            verified = true;
            break;
          }
        } catch (const util::ParseError&) {
        }
      }
    }
    if (!verified) {
      ok = false;
      result.first_error = "no verifying SIG for " + rrset.name.to_string() + " " +
                           to_string(rrset.type);
      return;
    }
    ++result.verified;
  });
  if (!ok) return result;

  // NXT chain: every name must have exactly one NXT; the chain must be a
  // single cycle through all names in canonical order.
  const auto names = zone.names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const RRset* nxt = zone.find(names[i], RRType::kNXT);
    if (!nxt || nxt->rdatas.size() != 1) {
      result.first_error = "missing NXT at " + names[i].to_string();
      return result;
    }
    const NxtRdata rd = NxtRdata::decode(nxt->rdatas.front());
    const Name& expected_next = names[(i + 1) % names.size()];
    if (!(rd.next == expected_next)) {
      result.first_error = "NXT chain broken at " + names[i].to_string();
      return result;
    }
  }
  result.ok = true;
  return result;
}

}  // namespace sdns::dns
