// sdnsd — one replica of the intrusion-tolerant name service, deployed.
//
//   sdnsd <config-file> [--recover] [--log LEVEL]
//
// The config file format is RuntimeConfig::load's `key = value` form; see
// README.md for the four-replica localhost recipe and sdns_keygen for how
// the trusted dealer produces the key material the config points at.
//
// SIGINT/SIGTERM stop the loop cleanly (EventLoop::wake is async-signal
// safe), so supervisors can restart a replica and exercise the recovery
// path (--recover pulls a verified snapshot from the peers after boot).
#include <csignal>
#include <cstdio>
#include <cstring>

#include "net/runtime.hpp"
#include "util/log.hpp"

namespace {
sdns::net::EventLoop* g_loop = nullptr;

void handle_signal(int) {
  if (g_loop) g_loop->stop();  // stop() only touches an atomic + eventfd
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <config-file> [--recover] [--log error|warn|info|debug]\n",
               argv0);
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const char* config_path = nullptr;
  bool recover = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
      const char* level = argv[++i];
      if (std::strcmp(level, "error") == 0) {
        sdns::util::set_log_level(sdns::util::LogLevel::kError);
      } else if (std::strcmp(level, "warn") == 0) {
        sdns::util::set_log_level(sdns::util::LogLevel::kWarn);
      } else if (std::strcmp(level, "info") == 0) {
        sdns::util::set_log_level(sdns::util::LogLevel::kInfo);
      } else if (std::strcmp(level, "debug") == 0) {
        sdns::util::set_log_level(sdns::util::LogLevel::kDebug);
      } else {
        return usage(argv[0]);
      }
    } else if (!config_path) {
      config_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (!config_path) return usage(argv[0]);

  try {
    sdns::net::RuntimeConfig config = sdns::net::RuntimeConfig::load(config_path);
    if (recover) config.recover = true;
    sdns::net::EventLoop loop;
    g_loop = &loop;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);
    sdns::net::ReplicaRuntime runtime(loop, std::move(config));
    runtime.start();
    loop.run();
    g_loop = nullptr;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdnsd: %s\n", e.what());
    return 1;
  }
}
