// sdnsd — one replica of the intrusion-tolerant name service, deployed.
//
//   sdnsd <config-file> [--recover] [--data-dir DIR] [--snapshot-bytes N]
//         [--log LEVEL] [--stats-interval SECONDS]
//         [--trace-dump] [--shards N] [--parse-threads N]
//         [--fault-schedule FILE]
//         [--fault-seed SEED] [--fault-time-scale X] [--fault-wan TOPOLOGY]
//
// The config file format is RuntimeConfig::load's `key = value` form; see
// README.md for the four-replica localhost recipe and sdns_keygen for how
// the trusted dealer produces the key material the config points at.
//
// SIGINT/SIGTERM stop the loop cleanly (EventLoop::wake is async-signal
// safe), so supervisors can restart a replica and exercise the recovery
// path (--recover pulls a verified snapshot from the peers after boot).
//
// Durability (src/store; see DESIGN.md §13):
//   --data-dir DIR       write-ahead log + signed snapshots in DIR. A
//                        restart first recovers from disk (snapshot verified
//                        against the zone key, WAL tail replayed), and
//                        --recover then merely confirms with the peers that
//                        the disk is current instead of transferring state;
//   --snapshot-bytes N   snapshot + truncate once the WAL exceeds N bytes.
//
// Introspection:
//   --stats-interval N   log one counter-summary line every N seconds (the
//                        same counters `stats.sdns. CH TXT` serves live);
//   --trace-dump         dump the bounded protocol trace ring to stderr on
//                        SIGUSR1, and — via an async-signal-safe path — on
//                        SIGSEGV/SIGABRT before re-raising, so a crashed
//                        replica leaves its last protocol events behind.
//
// Wire-level chaos (net/wirefault.hpp; see DESIGN.md §12):
//   --fault-schedule F   load a serialized sim::FaultSchedule and enforce it
//                        on the mesh/frontend with the deterministic injector;
//   --fault-seed S       injector decision seed (same seed = same faults);
//   --fault-time-scale X wall seconds per schedule second;
//   --fault-wan T        apply the paper's Figure-1 per-link latency floor
//                        for topology T (e.g. internet-4) — usable on its
//                        own, without a schedule, for WAN-shaped benchmarks.
#include <csignal>
#include <cstdio>
#include <cstring>

#include "net/runtime.hpp"
#include "util/log.hpp"

namespace {
sdns::net::EventLoop* g_loop = nullptr;
sdns::net::ReplicaRuntime* g_runtime = nullptr;
volatile std::sig_atomic_t g_trace_requested = 0;

void handle_signal(int) {
  if (g_loop) g_loop->stop();  // stop() only touches an atomic + eventfd
}

void handle_trace_signal(int) {
  g_trace_requested = 1;
  if (g_loop) g_loop->wake();
}

// Crash path: TraceRing::dump is async-signal-safe (write(2) only), and the
// ring itself is only ever mutated from the event-loop thread this handler
// interrupts, so reading it here is safe.
void handle_crash_signal(int sig) {
  if (g_runtime) g_runtime->registry().trace().dump(2);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <config-file> [--recover] [--data-dir DIR]"
               " [--snapshot-bytes N] [--log error|warn|info|debug]"
               " [--stats-interval SECONDS] [--trace-dump] [--shards N]"
               " [--parse-threads N]"
               " [--fault-schedule FILE] [--fault-seed SEED]"
               " [--fault-time-scale X] [--fault-wan TOPOLOGY]\n",
               argv0);
  return 2;
}

// Poll for a pending SIGUSR1 trace request; re-arms itself forever. A timer
// (rather than dumping inside the handler) keeps the common path entirely
// out of signal context.
void arm_trace_poll(sdns::net::EventLoop& loop) {
  loop.add_timer(0.25, [&loop] {
    if (g_trace_requested) {
      g_trace_requested = 0;
      if (g_runtime) g_runtime->registry().trace().dump(2);
    }
    arm_trace_poll(loop);
  });
}
}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const char* config_path = nullptr;
  bool recover = false;
  const char* data_dir = nullptr;
  long long snapshot_bytes = -1;
  bool trace_dump = false;
  bool explicit_log_level = false;
  double stats_interval = -1;
  int shards = 0;         // 0: keep the config file's value
  int parse_threads = 0;  // 0: keep the config file's value
  const char* fault_schedule = nullptr;
  const char* fault_wan = nullptr;
  unsigned long long fault_seed = 0;
  bool explicit_fault_seed = false;
  double fault_time_scale = 0;  // 0: keep the config file's value
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot-bytes") == 0 && i + 1 < argc) {
      snapshot_bytes = std::atoll(argv[++i]);
      if (snapshot_bytes < 0) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--trace-dump") == 0) {
      trace_dump = true;
    } else if (std::strcmp(argv[i], "--stats-interval") == 0 && i + 1 < argc) {
      stats_interval = std::atof(argv[++i]);
      if (stats_interval <= 0) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
      if (shards < 1 || shards > 16) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--parse-threads") == 0 && i + 1 < argc) {
      parse_threads = std::atoi(argv[++i]);
      if (parse_threads < 1) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--fault-schedule") == 0 && i + 1 < argc) {
      fault_schedule = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = std::strtoull(argv[++i], nullptr, 10);
      explicit_fault_seed = true;
    } else if (std::strcmp(argv[i], "--fault-time-scale") == 0 && i + 1 < argc) {
      fault_time_scale = std::atof(argv[++i]);
      if (fault_time_scale <= 0) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--fault-wan") == 0 && i + 1 < argc) {
      fault_wan = argv[++i];
    } else if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
      explicit_log_level = true;
      const char* level = argv[++i];
      if (std::strcmp(level, "error") == 0) {
        sdns::util::set_log_level(sdns::util::LogLevel::kError);
      } else if (std::strcmp(level, "warn") == 0) {
        sdns::util::set_log_level(sdns::util::LogLevel::kWarn);
      } else if (std::strcmp(level, "info") == 0) {
        sdns::util::set_log_level(sdns::util::LogLevel::kInfo);
      } else if (std::strcmp(level, "debug") == 0) {
        sdns::util::set_log_level(sdns::util::LogLevel::kDebug);
      } else {
        return usage(argv[0]);
      }
    } else if (!config_path) {
      config_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (!config_path) return usage(argv[0]);
  // Asking for periodic stats means asking to see them: the summary line is
  // logged at info, so lift the default warn threshold unless --log was given.
  if (stats_interval > 0 && !explicit_log_level) {
    sdns::util::set_log_level(sdns::util::LogLevel::kInfo);
  }

  try {
    sdns::net::RuntimeConfig config = sdns::net::RuntimeConfig::load(config_path);
    if (recover) config.recover = true;
    if (data_dir) config.data_dir = data_dir;
    if (snapshot_bytes >= 0) {
      config.snapshot_log_bytes = static_cast<std::uint64_t>(snapshot_bytes);
    }
    if (stats_interval > 0) config.stats_interval = stats_interval;
    if (shards > 0) config.shards = static_cast<unsigned>(shards);
    if (parse_threads > 0) config.parse_threads = static_cast<unsigned>(parse_threads);
    if (fault_schedule) config.fault_schedule = fault_schedule;
    if (explicit_fault_seed) config.fault_seed = fault_seed;
    if (fault_time_scale > 0) config.fault_time_scale = fault_time_scale;
    if (fault_wan) config.fault_wan = fault_wan;
    sdns::net::EventLoop loop;
    g_loop = &loop;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);
    sdns::net::ReplicaRuntime runtime(loop, std::move(config));
    g_runtime = &runtime;
    if (trace_dump) {
      std::signal(SIGUSR1, handle_trace_signal);
      std::signal(SIGSEGV, handle_crash_signal);
      std::signal(SIGABRT, handle_crash_signal);
      arm_trace_poll(loop);
    }
    runtime.start();
    loop.run();
    g_runtime = nullptr;
    g_loop = nullptr;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdnsd: %s\n", e.what());
    return 1;
  }
}
