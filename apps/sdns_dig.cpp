// sdns_dig — a minimal dig/nsupdate for talking to a running cluster.
//
//   sdns_dig @HOST:PORT [@HOST:PORT...] NAME [TYPE] [+tcp] [+edns[=SIZE]] [+ch]
//   sdns_dig @HOST:PORT [...] --add NAME ADDRESS [--tsig NAME:HEXSECRET]
//   sdns_dig @HOST:PORT [...] --del NAME [--tsig NAME:HEXSECRET]
//
// Queries go over UDP with automatic TC fallback to TCP (like dig); updates
// are RFC 2136 messages, optionally TSIG-signed (like nsupdate -y). Prints
// the response in presentation form; exit 0 iff NOERROR.
//
// `+ch` queries the CHAOS class — `sdns_dig @HOST:PORT stats.sdns. TXT +ch`
// scrapes a replica's live counters (BIND-style introspection).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dns/edns.hpp"
#include "net/resolver.hpp"

namespace {
int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s @HOST:PORT [@HOST:PORT...] NAME [TYPE] [+tcp] "
               "[+edns[=SIZE]] [+ch]\n"
               "       %s @HOST:PORT [...] --add NAME ADDR [--tsig N:HEX]\n"
               "       %s @HOST:PORT [...] --del NAME [--tsig N:HEX]\n",
               argv0, argv0, argv0);
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  sdns::net::StubResolver::Options opt;
  std::vector<std::string> words;
  std::string mode = "query";
  std::string tsig_spec;
  sdns::dns::RRClass klass = sdns::dns::RRClass::kIN;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() > 1 && arg[0] == '@') {
      opt.servers.push_back(sdns::net::SockAddr::parse(arg.substr(1)));
    } else if (arg == "+tcp") {
      opt.tcp_only = true;
    } else if (arg.rfind("+edns", 0) == 0) {
      opt.edns_payload = arg.size() > 6 ? static_cast<std::uint16_t>(
                                              std::stoul(arg.substr(6)))
                                        : sdns::dns::kDefaultEdnsPayload;
    } else if (arg == "+ch") {
      klass = sdns::dns::RRClass::kCH;
    } else if (arg == "--add" || arg == "--del") {
      mode = arg.substr(2);
    } else if (arg == "--tsig" && i + 1 < argc) {
      tsig_spec = argv[++i];
    } else {
      words.push_back(arg);
    }
  }
  if (opt.servers.empty() || words.empty()) return usage(argv[0]);

  try {
    sdns::net::StubResolver resolver(opt);
    sdns::net::StubResolver::Result result;
    if (mode == "query") {
      sdns::dns::RRType type = sdns::dns::RRType::kA;
      if (words.size() > 1) type = sdns::dns::rrtype_from_string(words[1]);
      if (type == sdns::dns::RRType::kAXFR || type == sdns::dns::RRType::kIXFR) {
        // dig NAME AXFR: reassemble the RFC 5936 envelope stream over TCP
        // and print the combined transfer.
        result = resolver.xfr(sdns::dns::Message::make_query(
            0, sdns::dns::Name::parse(words[0]), type));
      } else {
        result = resolver.query(sdns::dns::Name::parse(words[0]), type, klass);
      }
    } else {
      sdns::dns::Message update;
      update.opcode = sdns::dns::Opcode::kUpdate;
      // The zone section names the apex: derive it by dropping one label.
      const sdns::dns::Name name = sdns::dns::Name::parse(words[0]);
      update.questions.push_back(
          {name.parent(), sdns::dns::RRType::kSOA, sdns::dns::RRClass::kIN});
      sdns::dns::ResourceRecord rr;
      rr.name = name;
      rr.type = sdns::dns::RRType::kA;
      if (mode == "add") {
        if (words.size() < 2) return usage(argv[0]);
        rr.ttl = 300;
        rr.rdata = sdns::dns::ARdata::from_text(words[1]).encode();
      } else {
        rr.klass = sdns::dns::RRClass::kANY;
        rr.ttl = 0;
      }
      update.updates().push_back(rr);
      if (!tsig_spec.empty()) {
        const auto colon = tsig_spec.find(':');
        if (colon == std::string::npos) return usage(argv[0]);
        sdns::dns::TsigKey key{tsig_spec.substr(0, colon),
                               sdns::util::hex_decode(tsig_spec.substr(colon + 1))};
        result = resolver.send_update(std::move(update), &key);
      } else {
        result = resolver.send_update(std::move(update));
      }
    }
    if (!result.ok) {
      std::fprintf(stderr, "sdns_dig: no response: %s\n", result.error.c_str());
      return 1;
    }
    std::printf("%s", result.response.to_text().c_str());
    std::printf(";; tries: %u, transport: %s\n", result.tries,
                result.used_tcp ? "tcp" : "udp");
    return result.response.rcode == sdns::dns::Rcode::kNoError ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdns_dig: %s\n", e.what());
    return 1;
  }
}
