// sdns_edge — a stateless serving edge of the replicated zone, deployed.
//
//   sdns_edge <config-file> [--log LEVEL] [--shards N]
//             [--refresh-interval SECONDS]
//
// The config file format is EdgeConfig::load's `key = value` form:
//
//   origin      = example.com.
//   zone_public = dir/zone.pub          # the dealt threshold zone key
//   listen_dns  = 127.0.0.1:5500
//   core        = 127.0.0.1:5300        # one line per core replica
//   core        = 127.0.0.1:5301
//
// An edge holds no key share and no replica state machine: it AXFRs the
// zone from any core replica at boot, IXFRs on NOTIFY (RFC 1996) or on the
// SOA-refresh poll, verifies every received zone against the threshold zone
// key before serving it, and answers queries from the same sharded
// frontend + packet cache a replica uses. Scrape `stats.sdns. CH TXT` for
// its counters (edge.ixfr_applied, edge.zone_serial, ...).
#include <csignal>
#include <cstdio>
#include <cstring>

#include "net/edge.hpp"
#include "util/log.hpp"

namespace {
sdns::net::EventLoop* g_loop = nullptr;

void handle_signal(int) {
  if (g_loop) g_loop->stop();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <config-file> [--log error|warn|info|debug]"
               " [--shards N] [--refresh-interval SECONDS]\n",
               argv0);
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const char* config_path = nullptr;
  int shards = 0;  // 0: keep the config file's value
  double refresh_interval = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
      if (shards < 1 || shards > 16) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--refresh-interval") == 0 && i + 1 < argc) {
      refresh_interval = std::atof(argv[++i]);
      if (refresh_interval <= 0) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
      const char* level = argv[++i];
      if (std::strcmp(level, "error") == 0) {
        sdns::util::set_log_level(sdns::util::LogLevel::kError);
      } else if (std::strcmp(level, "warn") == 0) {
        sdns::util::set_log_level(sdns::util::LogLevel::kWarn);
      } else if (std::strcmp(level, "info") == 0) {
        sdns::util::set_log_level(sdns::util::LogLevel::kInfo);
      } else if (std::strcmp(level, "debug") == 0) {
        sdns::util::set_log_level(sdns::util::LogLevel::kDebug);
      } else {
        return usage(argv[0]);
      }
    } else if (!config_path) {
      config_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (!config_path) return usage(argv[0]);

  try {
    sdns::net::EdgeConfig config = sdns::net::EdgeConfig::load(config_path);
    if (shards > 0) config.shards = static_cast<unsigned>(shards);
    if (refresh_interval > 0) config.refresh_interval = refresh_interval;
    sdns::net::EventLoop loop;
    g_loop = &loop;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);
    sdns::net::EdgeRuntime runtime(loop, std::move(config));
    runtime.start();
    loop.run();
    g_loop = nullptr;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdns_edge: %s\n", e.what());
    return 1;
  }
}
