// sdns_keygen — the trusted dealer (§4.3) as a command-line utility.
//
//   sdns_keygen --dir DIR [--n N] [--t T] [--bits 512|1024]
//               [--origin NAME] [--zone FILE] [--tsig] [--durable]
//               [--dns-port P] [--mesh-port P] [--seed S]
//               [--edges K] [--edge-port P] [--journal-limit M]
//
// --durable points each replica's config at a data directory
// (DIR/data<i>) for the write-ahead log and signed snapshots, so a
// restarted replica recovers from disk before asking the peers.
//
// --edges K additionally writes edge<k>.conf for K replication edges
// (run with sdns_edge) and points every replica's NOTIFY list at them.
// Edge configs carry only the zone PUBLIC key — no share, no secrets.
//
// Writes, into DIR (which must exist): the threshold-signed zone in wire
// form, the SINTRA group public key, the threshold zone public key, the
// shared mesh secret, and per replica i: node<i>.secret, zone<i>.share and
// replica<i>.conf — a ready-to-run sdnsd config. In a real deployment each
// private file would travel to its server over SSH; on localhost they just
// share a directory.
#include <cstdio>
#include <cstring>
#include <string>

#include "net/cluster.hpp"

namespace {
int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dir DIR [--n N] [--t T] [--bits 512|1024] "
               "[--origin NAME] [--zone FILE] [--tsig] [--durable] "
               "[--dns-port P] [--mesh-port P] [--seed S] "
               "[--edges K] [--edge-port P] [--journal-limit M]\n",
               argv0);
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  sdns::net::ClusterOptions opt;
  std::string zone_path;
  for (int i = 1; i < argc; ++i) {
    const auto want_value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (const char* v = want_value("--dir")) dir = v;
    else if (const char* v = want_value("--n")) opt.n = static_cast<unsigned>(std::stoul(v));
    else if (const char* v = want_value("--t")) opt.t = static_cast<unsigned>(std::stoul(v));
    else if (const char* v = want_value("--bits")) opt.key_bits = std::stoul(v);
    else if (const char* v = want_value("--origin")) opt.origin = v;
    else if (const char* v = want_value("--zone")) zone_path = v;
    else if (const char* v = want_value("--dns-port"))
      opt.dns_base_port = static_cast<std::uint16_t>(std::stoul(v));
    else if (const char* v = want_value("--mesh-port"))
      opt.mesh_base_port = static_cast<std::uint16_t>(std::stoul(v));
    else if (const char* v = want_value("--seed")) opt.seed = std::stoull(v);
    else if (const char* v = want_value("--edges"))
      opt.edges = static_cast<unsigned>(std::stoul(v));
    else if (const char* v = want_value("--edge-port"))
      opt.edge_base_port = static_cast<std::uint16_t>(std::stoul(v));
    else if (const char* v = want_value("--journal-limit"))
      opt.journal_limit = std::stoul(v);
    else if (std::strcmp(argv[i], "--tsig") == 0) opt.require_tsig = true;
    else if (std::strcmp(argv[i], "--durable") == 0) opt.durable = true;
    else return usage(argv[0]);
  }
  if (dir.empty()) return usage(argv[0]);

  try {
    if (!zone_path.empty()) {
      const sdns::util::Bytes text = sdns::net::read_file(zone_path);
      opt.zone_text.assign(text.begin(), text.end());
    }
    const sdns::net::ClusterFiles files = sdns::net::generate_cluster(dir, opt);
    std::printf("dealt (n=%u, t=%u) cluster into %s\n", opt.n, opt.t, dir.c_str());
    for (unsigned i = 0; i < opt.n; ++i) {
      std::printf("  replica %u: %s (dns %s)\n", i, files.configs[i].c_str(),
                  files.dns_addrs[i].to_string().c_str());
    }
    for (unsigned k = 0; k < opt.edges; ++k) {
      std::printf("  edge %u: %s (dns %s)\n", k, files.edge_configs[k].c_str(),
                  files.edge_addrs[k].to_string().c_str());
    }
    if (opt.require_tsig) {
      std::printf("  tsig key: %s secret %s\n", files.tsig_name.c_str(),
                  files.tsig_secret_hex.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sdns_keygen: %s\n", e.what());
    return 1;
  }
}
