// Standalone chaos-campaign driver.
//
//   chaos_campaign --seeds 200                 200-seed campaign, n=4
//   chaos_campaign --topology internet7 --byzantine 2 --seeds 200
//   chaos_campaign --seed 1234567              replay one seed (with report)
//   chaos_campaign --seed 1234567 --minimize   replay and shrink the schedule
//   chaos_campaign --self-test                 corrupt replicas beyond the
//                                              fault bound and demand a
//                                              reported, replayable violation
//
// Exit status: 0 when the campaign is clean (or the self-test failed as it
// must), 1 on any unexpected violation — with each failure's seed, Byzantine
// assignment and minimized fault schedule printed for replay.
#include <cstring>
#include <iostream>
#include <string>

#include "core/chaos.hpp"

using namespace sdns;

namespace {

struct Args {
  std::uint64_t first_seed = 1;
  std::size_t seeds = 50;
  bool single = false;     ///< --seed given: run exactly one scenario
  bool minimize = false;
  bool self_test = false;
  core::ChaosConfig cfg;
};

void usage() {
  std::cout << "usage: chaos_campaign [--seeds N] [--seed S] [--first-seed S]\n"
               "                      [--topology lan4|internet4|internet7]\n"
               "                      [--byzantine K] [--ops N] [--max-faults N]\n"
               "                      [--minimize] [--self-test]\n";
}

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << a << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--seeds") {
      const char* v = next();
      if (!v) return false;
      args.seeds = std::stoull(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.first_seed = std::stoull(v);
      args.single = true;
    } else if (a == "--first-seed") {
      const char* v = next();
      if (!v) return false;
      args.first_seed = std::stoull(v);
    } else if (a == "--topology") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "lan4") == 0) {
        args.cfg.topology = sim::Topology::kLan4;
      } else if (std::strcmp(v, "internet4") == 0) {
        args.cfg.topology = sim::Topology::kInternet4;
      } else if (std::strcmp(v, "internet7") == 0) {
        args.cfg.topology = sim::Topology::kInternet7;
      } else {
        std::cerr << "unknown topology " << v << "\n";
        return false;
      }
    } else if (a == "--byzantine") {
      const char* v = next();
      if (!v) return false;
      args.cfg.byzantine = static_cast<unsigned>(std::stoul(v));
    } else if (a == "--ops") {
      const char* v = next();
      if (!v) return false;
      args.cfg.operations = std::stoull(v);
    } else if (a == "--max-faults") {
      const char* v = next();
      if (!v) return false;
      args.cfg.max_faults = std::stoull(v);
    } else if (a == "--minimize") {
      args.minimize = true;
    } else if (a == "--self-test") {
      args.self_test = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::cerr << "unknown argument " << a << "\n";
      usage();
      return false;
    }
  }
  return true;
}

int self_test(Args args) {
  // Corrupt replicas beyond the design's tolerance and demand that the
  // harness notices and that the failure replays from its seed. Muting t+1
  // of n signers is NOT enough: threshold signing needs only t+1 shares, so
  // it tolerates up to n-t-1 missing ones. Mute n-t replicas, leaving t
  // honest shares — below the assembly threshold — so every update wedges
  // and the liveness checker must fire.
  args.cfg.seed = args.first_seed;
  core::ChaosReport probe = core::run_chaos(args.cfg);
  std::map<unsigned, core::CorruptionMode> corrupt;
  for (unsigned i = 0; i < probe.n - probe.t; ++i) {
    corrupt[i] = core::CorruptionMode::kMute;
  }
  args.cfg.corruption = corrupt;
  core::ChaosReport first = core::run_chaos(args.cfg);
  if (first.ok()) {
    std::cerr << "self-test FAILED: " << first.n - first.t
              << " mute replicas produced no violation\n"
              << first.to_string();
    return 1;
  }
  core::ChaosReport replay = core::run_chaos(args.cfg);
  if (replay.to_string() != first.to_string()) {
    std::cerr << "self-test FAILED: replay of seed " << args.cfg.seed
              << " produced a different report\n";
    return 1;
  }
  std::cout << "self-test ok: violation detected and replayed\n"
            << first.to_string();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 2;
  if (args.self_test) return self_test(args);

  if (args.single) {
    args.cfg.seed = args.first_seed;
    core::ChaosReport report =
        args.minimize ? core::minimize_failure(args.cfg) : core::run_chaos(args.cfg);
    std::cout << report.to_string();
    return report.ok() ? 0 : 1;
  }

  std::cout << "chaos campaign: " << args.seeds << " seeds from " << args.first_seed
            << ", topology " << sim::to_string(args.cfg.topology) << ", byzantine "
            << args.cfg.byzantine << "\n";
  core::CampaignResult result = core::run_campaign(
      args.cfg, args.first_seed, args.seeds, [&](const core::ChaosReport& r) {
        std::cout << "FAILURE:\n" << r.to_string();
        core::ChaosConfig cfg = args.cfg;
        cfg.seed = r.seed;
        core::ChaosReport minimized = core::minimize_failure(cfg);
        std::cout << "minimized reproducer:\n" << minimized.to_string();
      });
  std::cout << result.runs << " runs, " << result.failures.size() << " failures\n";
  return result.ok() ? 0 : 1;
}
