// Standalone chaos-campaign driver.
//
//   chaos_campaign --seeds 200                 200-seed campaign, n=4
//   chaos_campaign --topology internet7 --byzantine 2 --seeds 200
//   chaos_campaign --seed 1234567              replay one seed (with report)
//   chaos_campaign --seed 1234567 --minimize   replay and shrink the schedule
//   chaos_campaign --self-test                 corrupt replicas beyond the
//                                              fault bound and demand a
//                                              reported, replayable violation
//
// --wire runs the same seeded scenarios against REAL forked replica
// processes on real sockets (net::run_wire_chaos): identical schedule and
// Byzantine derivation per seed, faults enforced by the deterministic
// net::FaultInjector plus real SIGKILL/respawn, invariants scraped over the
// stats.sdns. CH TXT endpoint. Nightly CI runs the same date seed through
// both modes and diffs the outcomes. Wire runs take wall-clock seconds per
// seed; --time-scale compresses the schedule. --minimize is sim-only (the
// shrink loop would take hours of wall time on the wire).
//
// Exit status: 0 when the campaign is clean (or the self-test failed as it
// must), 1 on any unexpected violation — with each failure's seed, Byzantine
// assignment and minimized fault schedule printed for replay.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <set>
#include <string>

#include "core/chaos.hpp"
#include "net/wirechaos.hpp"

using namespace sdns;

namespace {

struct Args {
  std::uint64_t first_seed = 1;
  std::size_t seeds = 50;
  bool single = false;     ///< --seed given: run exactly one scenario
  bool minimize = false;
  bool self_test = false;
  bool wire = false;       ///< real sockets + forked replicas, not the sim
  double time_scale = 0.5;  ///< wire: wall seconds per schedule second
  unsigned shards = 1;      ///< wire: frontend shards per replica
  bool explicit_max_faults = false;
  core::ChaosConfig cfg;
};

void usage() {
  std::cout << "usage: chaos_campaign [--seeds N] [--seed S] [--first-seed S]\n"
               "                      [--topology lan4|internet4|internet7]\n"
               "                      [--byzantine K] [--ops N] [--max-faults N]\n"
               "                      [--minimize] [--self-test]\n"
               "                      [--wire] [--time-scale X] [--shards N]\n";
}

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << a << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--seeds") {
      const char* v = next();
      if (!v) return false;
      args.seeds = std::stoull(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.first_seed = std::stoull(v);
      args.single = true;
    } else if (a == "--first-seed") {
      const char* v = next();
      if (!v) return false;
      args.first_seed = std::stoull(v);
    } else if (a == "--topology") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "lan4") == 0) {
        args.cfg.topology = sim::Topology::kLan4;
      } else if (std::strcmp(v, "internet4") == 0) {
        args.cfg.topology = sim::Topology::kInternet4;
      } else if (std::strcmp(v, "internet7") == 0) {
        args.cfg.topology = sim::Topology::kInternet7;
      } else {
        std::cerr << "unknown topology " << v << "\n";
        return false;
      }
    } else if (a == "--byzantine") {
      const char* v = next();
      if (!v) return false;
      args.cfg.byzantine = static_cast<unsigned>(std::stoul(v));
    } else if (a == "--ops") {
      const char* v = next();
      if (!v) return false;
      args.cfg.operations = std::stoull(v);
    } else if (a == "--max-faults") {
      const char* v = next();
      if (!v) return false;
      args.cfg.max_faults = std::stoull(v);
      args.explicit_max_faults = true;
    } else if (a == "--wire") {
      args.wire = true;
    } else if (a == "--time-scale") {
      const char* v = next();
      if (!v) return false;
      args.time_scale = std::stod(v);
      if (args.time_scale <= 0) return false;
    } else if (a == "--shards") {
      const char* v = next();
      if (!v) return false;
      args.shards = static_cast<unsigned>(std::stoul(v));
    } else if (a == "--minimize") {
      args.minimize = true;
    } else if (a == "--self-test") {
      args.self_test = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::cerr << "unknown argument " << a << "\n";
      usage();
      return false;
    }
  }
  return true;
}

int self_test(Args args) {
  // Corrupt replicas beyond the design's tolerance and demand that the
  // harness notices and that the failure replays from its seed. Muting t+1
  // of n signers is NOT enough: threshold signing needs only t+1 shares, so
  // it tolerates up to n-t-1 missing ones. Mute n-t replicas, leaving t
  // honest shares — below the assembly threshold — so every update wedges
  // and the liveness checker must fire.
  args.cfg.seed = args.first_seed;
  core::ChaosReport probe = core::run_chaos(args.cfg);
  std::map<unsigned, core::CorruptionMode> corrupt;
  for (unsigned i = 0; i < probe.n - probe.t; ++i) {
    corrupt[i] = core::CorruptionMode::kMute;
  }
  args.cfg.corruption = corrupt;
  core::ChaosReport first = core::run_chaos(args.cfg);
  if (first.ok()) {
    std::cerr << "self-test FAILED: " << first.n - first.t
              << " mute replicas produced no violation\n"
              << first.to_string();
    return 1;
  }
  core::ChaosReport replay = core::run_chaos(args.cfg);
  if (replay.to_string() != first.to_string()) {
    std::cerr << "self-test FAILED: replay of seed " << args.cfg.seed
              << " produced a different report\n";
    return 1;
  }
  std::cout << "self-test ok: violation detected and replayed\n"
            << first.to_string();
  return 0;
}

// ---- wire mode: the same seeds, against forked replicas on real sockets ----

/// Map the sim topology flag onto a wire cluster shape: the replica count,
/// fault threshold, and (for the internet topologies) the Figure-1 per-link
/// latency floor the injector applies.
void wire_shape(const Args& args, net::WireCluster::Options& cluster,
                net::WireChaosOptions& w) {
  switch (args.cfg.topology) {
    case sim::Topology::kSingleZurich:
    case sim::Topology::kLan4:
      break;  // 4 replicas, LAN: no latency floor
    case sim::Topology::kInternet4:
      w.wan = sim::to_string(sim::Topology::kInternet4);
      break;
    case sim::Topology::kInternet7:
      cluster.n = 7;
      cluster.t = 2;
      w.wan = sim::to_string(sim::Topology::kInternet7);
      break;
  }
  cluster.shards = args.shards;
  w.byzantine = args.cfg.byzantine;
  w.operations = args.cfg.operations;
  // ChaosConfig's sim default (6 faults over 25 s) is too long for wall
  // clock; the wire default is 5 faults in a 6 s window at half time-scale.
  if (args.explicit_max_faults) w.max_faults = args.cfg.max_faults;
  w.time_scale = args.time_scale;
}

std::multiset<std::string> violated_invariants(const core::ChaosReport& r) {
  std::multiset<std::string> out;
  for (const auto& v : r.violations) out.insert(v.invariant);
  return out;
}

int wire_self_test(const Args& args) {
  // Same over-budget scenario as the sim self-test: mute n-t replicas so
  // updates cannot assemble t+1 signature shares, and demand that the wire
  // harness reports a violation that replays from the seed alone. Wire
  // timing varies run to run, so the replay must reproduce the violated
  // invariant set (the sim compares full reports byte for byte).
  net::WireCluster::Options copt;
  net::WireChaosOptions w;
  wire_shape(args, copt, w);
  net::WireCluster cluster(copt);
  w.seed = args.first_seed;
  w.schedule = sim::FaultSchedule{};  // the corruption alone is over budget
  std::map<unsigned, core::CorruptionMode> corrupt;
  for (unsigned i = 0; i < cluster.n() - cluster.t(); ++i) {
    corrupt[i] = core::CorruptionMode::kMute;
  }
  w.corruption = corrupt;
  w.no_stale_probe = false;
  const core::ChaosReport first = net::run_wire_chaos(cluster, w);
  if (first.ok()) {
    std::cerr << "wire self-test FAILED: " << corrupt.size()
              << " mute replicas produced no violation\n"
              << first.to_string();
    return 1;
  }
  const core::ChaosReport replay = net::run_wire_chaos(cluster, w);
  if (violated_invariants(replay) != violated_invariants(first)) {
    std::cerr << "wire self-test FAILED: replay of seed " << w.seed
              << " violated different invariants\nfirst:\n"
              << first.to_string() << "replay:\n"
              << replay.to_string();
    return 1;
  }
  std::cout << "wire self-test ok: violation detected and replayed\n"
            << first.to_string();
  return 0;
}

int wire_campaign(const Args& args) {
  net::WireCluster::Options copt;
  net::WireChaosOptions base;
  wire_shape(args, copt, base);
  net::WireCluster cluster(copt);

  if (args.single) {
    net::WireChaosOptions w = base;
    w.seed = args.first_seed;
    const core::ChaosReport report = net::run_wire_chaos(cluster, w);
    std::cout << report.to_string();
    return report.ok() ? 0 : 1;
  }

  std::cout << "wire chaos campaign: " << args.seeds << " seeds from "
            << args.first_seed << ", n=" << cluster.n() << ", t=" << cluster.t()
            << ", byzantine " << args.cfg.byzantine << ", time-scale "
            << args.time_scale << (base.wan.empty() ? "" : ", wan " + base.wan)
            << "\n";
  std::size_t failures = 0;
  for (std::size_t i = 0; i < args.seeds; ++i) {
    net::WireChaosOptions w = base;
    w.seed = args.first_seed + i;
    const core::ChaosReport report = net::run_wire_chaos(cluster, w);
    if (!report.ok()) {
      ++failures;
      std::cout << "FAILURE:\n"
                << report.to_string() << "replay: chaos_campaign --wire --seed "
                << report.seed << "\n";
    } else if ((i + 1) % 10 == 0 || i + 1 == args.seeds) {
      std::cout << (i + 1) << "/" << args.seeds << " wire runs clean\n";
    }
  }
  std::cout << args.seeds << " runs, " << failures << " failures\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 2;
  if (args.wire) {
    if (args.minimize) {
      std::cerr << "--minimize is sim-only: replay the seed without --wire to "
                   "shrink its schedule\n";
      return 2;
    }
    return args.self_test ? wire_self_test(args) : wire_campaign(args);
  }
  if (args.self_test) return self_test(args);

  if (args.single) {
    args.cfg.seed = args.first_seed;
    core::ChaosReport report =
        args.minimize ? core::minimize_failure(args.cfg) : core::run_chaos(args.cfg);
    std::cout << report.to_string();
    return report.ok() ? 0 : 1;
  }

  std::cout << "chaos campaign: " << args.seeds << " seeds from " << args.first_seed
            << ", topology " << sim::to_string(args.cfg.topology) << ", byzantine "
            << args.cfg.byzantine << "\n";
  core::CampaignResult result = core::run_campaign(
      args.cfg, args.first_seed, args.seeds, [&](const core::ChaosReport& r) {
        std::cout << "FAILURE:\n" << r.to_string();
        core::ChaosConfig cfg = args.cfg;
        cfg.seed = r.seed;
        core::ChaosReport minimized = core::minimize_failure(cfg);
        std::cout << "minimized reproducer:\n" << minimized.to_string();
      });
  std::cout << result.runs << " runs, " << result.failures.size() << " failures\n";
  return result.ok() ? 0 : 1;
}
