// Atomic broadcast microbenchmarks (simulated latency, not wall clock):
// delivery latency vs group size and topology, cost of the fall-back path,
// and the round distribution of the randomized binary agreement.
//
// This quantifies the substrate the paper takes from SINTRA: how much the
// "optimistic" protocol costs when the leader is correct, and what an epoch
// change costs when it is not.
#include <cstdio>
#include <memory>

#include "abcast/broadcast.hpp"
#include "sim/costmodel.hpp"
#include "sim/network.hpp"
#include "sim/testbed.hpp"
#include "util/rng.hpp"

using namespace sdns;

namespace {

struct Fleet {
  Fleet(const abcast::Group& g, sim::Topology topology, double timeout = 2.0)
      : group(g), net(sim, util::Rng(11), g.pub->n + 1, 0.00015) {
    const auto bed = sim::make_testbed(topology);
    if (bed.replica_count() == g.pub->n) sim::apply_testbed(bed, net);
    const sim::CostModel cost;
    util::Rng seed(12);
    delivered.resize(g.pub->n);
    for (unsigned i = 0; i < g.pub->n; ++i) {
      abcast::AtomicBroadcast::Callbacks cb;
      cb.send = [this, i](unsigned to, const util::Bytes& m) { net.send(i, to, m); };
      cb.deliver = [this, i](const util::Bytes&) {
        delivered[i] += 1;
        if (i == 0) last_delivery_at = sim.now();
      };
      cb.now = [this] { return sim.now(); };
      cb.set_timer = [this, i](double d, std::function<void()> fn) {
        sim.schedule(d, [this, i, fn = std::move(fn)] {
          net.cpu(i).enqueue(sim.now(), fn);
        });
      };
      cb.charge_message = [this, i, cost] { net.cpu(i).charge(cost.message_handle); };
      cb.charge_auth_sign = [this, i, cost] { net.cpu(i).charge(cost.auth_sign); };
      cb.charge_auth_verify = [this, i, cost] { net.cpu(i).charge(cost.auth_verify); };
      abcast::AtomicBroadcast::Options opt;
      opt.complaint_timeout = timeout;
      nodes.push_back(std::make_unique<abcast::AtomicBroadcast>(
          g.pub, g.secrets[i], std::move(cb), opt, seed.fork()));
      net.set_handler(i, [this, i](sim::NodeId from, util::Bytes m) {
        nodes[i]->on_message(static_cast<unsigned>(from), m);
      });
    }
  }

  const abcast::Group& group;
  sim::Simulator sim;
  sim::Network net;
  std::vector<std::unique_ptr<abcast::AtomicBroadcast>> nodes;
  std::vector<std::uint64_t> delivered;
  double last_delivery_at = 0;
};

const abcast::Group& group_of(unsigned n, unsigned t) {
  static std::map<std::pair<unsigned, unsigned>, abcast::Group> cache;
  auto it = cache.find({n, t});
  if (it == cache.end()) {
    util::Rng rng(1000 + n);
    it = cache.emplace(std::make_pair(n, t), abcast::generate_group(rng, n, t, 512)).first;
  }
  return it->second;
}

}  // namespace

int main() {
  std::printf("=== Atomic broadcast (SINTRA substitute) characteristics ===\n\n");

  std::printf("Delivery latency of one payload (virtual seconds):\n");
  std::printf("%-28s %10s %12s %12s\n", "configuration", "latency", "msgs", "bytes");
  struct Case {
    const char* label;
    unsigned n, t;
    sim::Topology topology;
  };
  const Case cases[] = {
      {"n=4 t=1, Zurich LAN", 4, 1, sim::Topology::kLan4},
      {"n=4 t=1, Internet", 4, 1, sim::Topology::kInternet4},
      {"n=7 t=2, Internet", 7, 2, sim::Topology::kInternet7},
      {"n=10 t=3, LAN", 10, 3, sim::Topology::kLan4},  // falls back to default LAN
  };
  for (const Case& c : cases) {
    Fleet fleet(group_of(c.n, c.t), c.topology);
    fleet.net.reset_stats();
    fleet.nodes[1]->submit(util::to_bytes("payload"));
    fleet.sim.run();
    std::printf("%-28s %10.4f %12llu %12llu\n", c.label, fleet.last_delivery_at,
                static_cast<unsigned long long>(fleet.net.messages_sent()),
                static_cast<unsigned long long>(fleet.net.bytes_sent()));
  }

  std::printf("\nThroughput (pipelined: 50 payloads, time to deliver all):\n");
  {
    Fleet fleet(group_of(4, 1), sim::Topology::kLan4);
    for (int k = 0; k < 50; ++k) {
      fleet.nodes[static_cast<unsigned>(k % 4)]->submit(
          util::to_bytes("p" + std::to_string(k)));
    }
    fleet.sim.run();
    std::printf("  n=4 LAN: 50 payloads in %.3f s => %.1f req/s\n", fleet.sim.now(),
                50.0 / fleet.sim.now());
  }

  std::printf("\nFall-back path (mute leader, complaint timeout 0.5 s):\n");
  {
    Fleet fleet(group_of(4, 1), sim::Topology::kLan4, /*timeout=*/0.5);
    fleet.net.set_node_down(0, true);
    fleet.nodes[1]->submit(util::to_bytes("stuck"));
    fleet.sim.run();
    std::printf("  delivered after %.3f s (timeout + binary agreement + epoch change);\n"
                "  epoch at node 1: %u, epoch changes: %llu\n",
                fleet.last_delivery_at == 0 ? fleet.sim.now() : fleet.last_delivery_at,
                fleet.nodes[1]->epoch(),
                static_cast<unsigned long long>(fleet.nodes[1]->epoch_changes()));
  }

  std::printf("\nRandomized binary agreement convergence (threshold-RSA coin):\n");
  {
    // Measured indirectly: epoch changes with mixed complaint evidence still
    // converge; here we report the BBA round count across seeds.
    int total_rounds = 0;
    int runs = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const abcast::Group& g = group_of(4, 1);
      sim::Simulator sim;
      sim::Network net(sim, util::Rng(seed), 4, 0.001);
      abcast::ThresholdCoin* coin_ptr = nullptr;
      std::vector<std::unique_ptr<abcast::ThresholdCoin>> coins;
      std::vector<std::unique_ptr<abcast::BinaryAgreement>> bbas;
      util::Rng fork(seed * 7);
      for (unsigned i = 0; i < 4; ++i) {
        abcast::ThresholdCoin::Callbacks ccb;
        ccb.send_to_all = [&net, i](const util::Bytes& m) {
          for (unsigned j = 0; j < 4; ++j) {
            if (j != i) net.send(i, j, m);
          }
        };
        coins.push_back(std::make_unique<abcast::ThresholdCoin>(g.pub, g.secrets[i],
                                                                std::move(ccb),
                                                                fork.fork()));
        abcast::BinaryAgreement::Callbacks bcb;
        bcb.send_to_all = [&net, i](const util::Bytes& m) {
          for (unsigned j = 0; j < 4; ++j) {
            if (j != i) net.send(i, j, m);
          }
        };
        bbas.push_back(std::make_unique<abcast::BinaryAgreement>(g.pub, i, seed,
                                                                 *coins[i],
                                                                 std::move(bcb)));
        net.set_handler(i, [&coins, &bbas, i](sim::NodeId from, util::Bytes m) {
          if (abcast::ThresholdCoin::is_coin_message(m)) {
            coins[i]->on_message(m);
          } else {
            bbas[i]->on_message(static_cast<unsigned>(from), m);
          }
        });
      }
      (void)coin_ptr;
      for (unsigned i = 0; i < 4; ++i) bbas[i]->start(i % 2 == 0);
      sim.run();
      if (bbas[0]->decided()) {
        total_rounds += static_cast<int>(bbas[0]->rounds_used()) + 1;
        ++runs;
      }
    }
    std::printf("  mixed inputs, 10 seeds: avg %.1f rounds to decide (expected O(1))\n",
                runs ? double(total_rounds) / runs : -1.0);
  }
  return 0;
}
