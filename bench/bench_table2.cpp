// Reproduces Table 2 of the paper: latency of read, add, and delete
// operations for every (n, k) setup and threshold-signature protocol.
//
// Times are virtual seconds from the discrete-event simulator; the crypto
// cost model is calibrated against the paper's Table 3 (see sim/costmodel.hpp
// and EXPERIMENTS.md). Shapes to compare with the paper:
//   - reads: ~0.05 s on the LAN, a few hundred ms across the Internet;
//   - BASIC is several times slower than OPTPROOF/OPTTE and degrades with n;
//   - adds cost ~2x deletes (4 vs 2 SIG records);
//   - OPTPROOF degrades sharply with corruptions, OPTTE barely.
#include "bench_common.hpp"

#include "sim/testbed.hpp"

using namespace sdns;
using namespace sdns::bench;

int main(int argc, char** argv) {
  const int trials = trials_from_args(argc, argv);
  std::printf("=== Table 2: operation latencies (seconds, avg of %d runs) ===\n\n", trials);
  std::printf("Machines (paper Table 1):\n%s\n", sim::testbed_table1().c_str());
  std::printf("%s\n", sim::testbed_figure1().c_str());
  std::printf("%-7s %6s | %8s %9s %7s | %8s %9s %7s\n", "(n,k)", "Read", "AddBASIC",
              "AddOPTPRF", "AddOPTTE", "DelBASIC", "DelOPTPRF", "DelOPTTE");
  std::printf("---------------+------------------------------+------------------------------\n");
  for (const Setup& setup : table2_setups()) {
    const bool base = setup.topology == sim::Topology::kSingleZurich;
    // Reads are measured once per row (protocol-independent); the paper
    // reports them only for k = 0.
    Stats basic = measure(setup, threshold::SigProtocol::kBasic, trials);
    Stats optproof{}, optte{};
    if (!base) {
      optproof = measure(setup, threshold::SigProtocol::kOptProof, trials);
      optte = measure(setup, threshold::SigProtocol::kOptTE, trials);
    }
    const bool show_read = setup.corrupted.empty();
    char read_buf[16] = "-";
    if (show_read) std::snprintf(read_buf, sizeof read_buf, "%.3f", basic.read);
    if (base) {
      std::printf("%-7s %6s | %8.3f %9s %7s | %8.3f %9s %7s\n", setup.label, read_buf,
                  basic.add, "-", "-", basic.del, "-", "-");
    } else {
      std::printf("%-7s %6s | %8.2f %9.2f %7.2f | %8.2f %9.2f %7.2f\n", setup.label,
                  read_buf, basic.add, optproof.add, optte.add, basic.del, optproof.del,
                  optte.del);
    }
  }
  std::printf(
      "\nPaper's Table 2 for comparison (seconds):\n"
      "(n,k)    Read |  AddBASIC AddOPTPRF AddOPTTE | DelBASIC DelOPTPRF DelOPTTE\n"
      "(1,0)       - |     0.047         -        - |    0.022         -        -\n"
      "(4,0)*   0.05 |      7.09      1.72     1.53 |     3.80      0.96     0.92\n"
      "(4,0)    0.37 |      6.36      3.09     3.01 |     3.10      1.78     1.80\n"
      "(4,1)       - |      9.29      6.48     3.10 |     5.04      3.99     1.90\n"
      "(7,0)    0.44 |     21.73      3.06     2.30 |    10.09      1.74     1.83\n"
      "(7,1)       - |     24.57      4.20     3.46 |    10.85      2.73     2.03\n"
      "(7,2)       - |     21.21     15.79     4.01 |    10.55      8.32     2.27\n");
  return 0;
}
