// Reproduces Figure 1 plus the "Read" column of Table 2: the experimental
// topology with its link round-trip times, and the read latency the client
// observes on each setup (LAN vs Internet; see §5.3's "read operations take
// anywhere from around 50 milliseconds on the LAN to several hundred
// milliseconds, when remote machines on the Internet are involved").
#include "bench_common.hpp"

#include "sim/testbed.hpp"

using namespace sdns;
using namespace sdns::bench;

int main(int argc, char** argv) {
  const int trials = trials_from_args(argc, argv);
  std::printf("=== Figure 1: experimental setup and link RTTs ===\n\n");
  std::printf("%s\n", sim::testbed_table1().c_str());
  std::printf("%s\n", sim::testbed_figure1().c_str());

  std::printf("Read latency by topology (avg of %d, client on the Zurich LAN):\n", trials);
  std::printf("%-16s %10s %14s %12s\n", "topology", "read [s]", "msgs/request",
              "bytes/request");
  struct Row {
    const char* label;
    sim::Topology topology;
  };
  const Row rows[] = {
      {"(1,0) base", sim::Topology::kSingleZurich},
      {"(4,0)* LAN", sim::Topology::kLan4},
      {"(4,0) Internet", sim::Topology::kInternet4},
      {"(7,0) Internet", sim::Topology::kInternet7},
  };
  for (const Row& row : rows) {
    core::ServiceOptions opt;
    opt.topology = row.topology;
    core::ReplicatedService svc(opt, origin(), kZoneText);
    svc.net().reset_stats();
    double total = 0;
    for (int k = 0; k < trials; ++k) {
      auto r = svc.query(dns::Name::parse("www.corp.example."), dns::RRType::kA);
      if (!r.ok) std::fprintf(stderr, "warning: read failed\n");
      total += r.latency;
    }
    svc.settle();
    std::printf("%-16s %10.3f %14.1f %12.0f\n", row.label, total / trials,
                double(svc.net().messages_sent()) / trials,
                double(svc.net().bytes_sent()) / trials);
  }
  std::printf("\nPaper: (4,0)* 0.05 s | (4,0) 0.37 s | (7,0) 0.44 s.\n"
              "Our simulator commits on the nearest quorum, so Internet reads come\n"
              "out ~3x faster than the 2004 prototype; the LAN/WAN ordering and the\n"
              "growth with n match (see EXPERIMENTS.md).\n");
  return 0;
}
