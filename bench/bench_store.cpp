// Durable zone store microbenchmarks (BENCH_store.json).
//
// Three questions the durability design doc needs numbers for:
//   1. WAL append throughput — records/s through append() with group-commit
//      fsyncs every `batch` records (batch=1 is the worst case: one fsync
//      per committed update; batch=32 approximates a PR-6 update batch).
//   2. fsync latency — p50/p99/max of the individual fdatasync calls, the
//      floor under every acknowledged update's commit latency.
//   3. Cold-restart time — open a data directory holding a snapshot of a
//      1k / 100k / 1M-RRset zone plus a short WAL tail, with the
//      deployment-shaped verifier (full Zone::from_wire parse, parsed zone
//      stashed in ZoneState::verified_zone exactly as sdnsd does) in place.
//      Each row also times the legacy v1 zone encoding's parse so the
//      SDNSZONE2 bulk-load speedup stays visible in the JSON.
//
//   bench_store [--dir DIR] [--records N] [--quick] [--json FILE]
//               [--threads N] [--max-parse-us N]
//
// --dir points at the filesystem under test (default: a fresh /tmp dir —
// NOTE: tmpfs fsyncs are free; point at a real disk for honest numbers).
// --quick caps the cold-restart sweep at 100k RRsets for CI smoke runs.
// --threads forwards to Zone::from_wire (0 = hardware concurrency).
// --max-parse-us N exits nonzero if the 100k-RRset row's v2 zone parse
// exceeds N microseconds — the CI perf-smoke regression gate.
#include <time.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dns/zone.hpp"
#include "store/durable.hpp"
#include "util/fileio.hpp"

namespace {

using sdns::bench::LatencySummary;
using sdns::dns::Name;
using sdns::store::DurableZoneStore;
using sdns::store::ZoneState;
using sdns::util::Bytes;
using sdns::util::BytesView;

double now_s() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::string fresh_dir(const std::string& base, const std::string& name) {
  sdns::util::ensure_dir(base);  // --dir need not pre-exist
  const std::string dir = base + "/" + name;
  const std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());
  sdns::util::ensure_dir(dir);
  return dir;
}

struct WalRow {
  std::size_t batch = 0;
  std::size_t records = 0;
  double seconds = 0;
  double records_per_s = 0;
  double mb_per_s = 0;
  LatencySummary fsync_us;
  double fsync_max_us = 0;
  std::size_t fsyncs = 0;
};

/// Append `records` payloads of ~128 bytes (a small signed update) with one
/// group-commit fsync per `batch`, timing each fsync individually.
WalRow bench_wal(const std::string& base, std::size_t records, std::size_t batch) {
  const std::string dir = fresh_dir(base, "wal_b" + std::to_string(batch));
  DurableZoneStore::Options opt;
  opt.dir = dir;
  opt.snapshot_log_bytes = 0;  // measure the log alone, no compaction
  DurableZoneStore store(opt);

  const Bytes payload(128, 0x5A);
  std::vector<double> fsync_us;
  fsync_us.reserve(records / batch + 1);
  const double t0 = now_s();
  for (std::size_t i = 0; i < records; ++i) {
    store.append(i, BytesView(payload), /*mark=*/false);
    if ((i + 1) % batch == 0) {
      const double s0 = now_s();
      store.sync();
      fsync_us.push_back((now_s() - s0) * 1e6);
    }
  }
  store.sync();
  const double elapsed = now_s() - t0;

  WalRow row;
  row.batch = batch;
  row.records = records;
  row.seconds = elapsed;
  row.records_per_s = static_cast<double>(records) / elapsed;
  row.mb_per_s =
      static_cast<double>(store.wal_bytes()) / elapsed / (1024.0 * 1024.0);
  row.fsync_us = LatencySummary::of(fsync_us);
  for (const double v : fsync_us) row.fsync_max_us = std::max(row.fsync_max_us, v);
  row.fsyncs = fsync_us.size();
  return row;
}

struct RestartRow {
  std::size_t rrsets = 0;
  std::size_t zone_bytes = 0;
  std::size_t snapshot_bytes = 0;
  std::size_t wal_tail = 0;
  unsigned parse_threads = 0;    ///< Zone::from_wire thread request (0 = auto)
  double zone_parse_us = 0;      ///< Zone::from_wire, SDNSZONE2 encoding
  double zone_parse_v1_us = 0;   ///< Zone::from_wire, legacy v1 encoding
  double zone_parse_ms = 0;      ///< zone_parse_us / 1000 (kept for trajectory)
  double open_ms = 0;            ///< DurableZoneStore ctor incl. verify (parse)
};

/// A synthetic unsigned zone of `rrsets` A records. Unsigned keeps the
/// sweep about I/O + parse cost; the threshold-verification cost of a
/// signed zone is covered by BENCH_crypto.json's verify numbers.
/// Both encodings of a synthetic zone. The Zone itself is built and
/// destroyed inside this function so the timed parses below start from the
/// same allocator state a long-running process restarts with (freed pages
/// ready for reuse), not a pristine heap paying a page fault per node.
void synthetic_zone_wires(std::size_t rrsets, Bytes& wire, Bytes& wire_v1) {
  sdns::dns::Zone zone = sdns::dns::Zone::from_text(
      Name::parse("bench.example."),
      "@ 3600 IN SOA ns1.bench.example. op.bench.example. 1 7200 3600 1209600 "
      "3600\n@ 3600 IN NS ns1.bench.example.\n");
  sdns::dns::ResourceRecord rr;
  rr.type = sdns::dns::RRType::kA;
  rr.ttl = 300;
  for (std::size_t i = 0; i < rrsets; ++i) {
    rr.name = Name::parse("h" + std::to_string(i) + ".bench.example.");
    const std::uint32_t a = static_cast<std::uint32_t>(i);
    rr.rdata = {10, static_cast<std::uint8_t>(a >> 16),
                static_cast<std::uint8_t>(a >> 8), static_cast<std::uint8_t>(a)};
    zone.add_record(rr);
  }
  wire = zone.to_wire();
  wire_v1 = zone.to_wire_v1();
}

RestartRow bench_restart(const std::string& base, std::size_t rrsets,
                         unsigned threads) {
  const std::string dir = fresh_dir(base, "restart_" + std::to_string(rrsets));
  Bytes wire;
  Bytes wire_v1;
  synthetic_zone_wires(rrsets, wire, wire_v1);

  RestartRow row;
  row.rrsets = rrsets;
  row.zone_bytes = wire.size();
  row.wal_tail = 32;
  row.parse_threads = threads;

  {
    DurableZoneStore::Options opt;
    opt.dir = dir;
    DurableZoneStore store(opt);
    ZoneState state;
    state.abcast_cursor = 1000;
    state.deliveries = 1000;
    state.zone_wire = wire;
    store.checkpoint([&] { return state; });
    // A realistic tail: a few dozen committed-but-uncompacted updates.
    const Bytes payload(128, 0x5A);
    for (std::size_t i = 0; i < row.wal_tail; ++i) {
      store.append(1000 + i, BytesView(payload), false);
    }
    store.sync();
  }

  {
    const double t0 = now_s();
    const sdns::dns::Zone parsed = sdns::dns::Zone::from_wire(wire, threads);
    row.zone_parse_us = (now_s() - t0) * 1e6;
    row.zone_parse_ms = row.zone_parse_us / 1e3;
    if (parsed.rrset_count() < rrsets) std::abort();  // sanity
  }
  {
    const double t0 = now_s();
    const sdns::dns::Zone parsed = sdns::dns::Zone::from_wire(wire_v1);
    row.zone_parse_v1_us = (now_s() - t0) * 1e6;
    if (parsed.rrset_count() < rrsets) std::abort();  // sanity
  }

  const double t0 = now_s();
  DurableZoneStore::Options opt;
  opt.dir = dir;
  // The deployment verifier parses the embedded zone before trusting it and
  // stashes the parsed Zone for the restore path to adopt by move; mirror
  // that shape so open_ms is what a restarting sdnsd actually waits.
  opt.verify = [threads](ZoneState& s) {
    try {
      auto z = std::make_shared<sdns::dns::Zone>(
          sdns::dns::Zone::from_wire(s.zone_wire, threads));
      s.verified_zone = std::move(z);
      return true;
    } catch (const sdns::util::ParseError&) {
      return false;
    }
  };
  DurableZoneStore store(opt);
  row.open_ms = (now_s() - t0) * 1e3;
  if (!store.recovered().usable() ||
      store.recovered().tail.size() != row.wal_tail) {
    std::fprintf(stderr, "restart recovery mismatch at %zu rrsets\n", rrsets);
    std::abort();
  }
  row.snapshot_bytes =
      sdns::util::read_entire_file(dir + "/snapshot.bin").size();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string json_path;
  std::size_t records = 200000;
  bool quick = false;
  unsigned threads = 0;
  double max_parse_us = 0;  // 0: no gate
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      records = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-parse-us") == 0 && i + 1 < argc) {
      max_parse_us = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--dir DIR] [--records N] [--quick] [--json FILE]"
                   " [--threads N] [--max-parse-us N]\n",
                   argv[0]);
      return 2;
    }
  }
  std::string owned;
  if (dir.empty()) {
    char tmpl[] = "/tmp/sdns_bench_store_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) return 1;
    owned = dir = tmpl;
  }

  std::ostringstream json;
  json << "{\n  \"benchmark\": \"store_durability\",\n  \"dir\": \"" << dir
       << "\",\n  \"wal\": [\n";
  const std::size_t batches[] = {1, 8, 32};
  bool first = true;
  for (const std::size_t batch : batches) {
    // batch=1 fsyncs per record: scale the record count down so the row
    // finishes in seconds even on a disk with ~1 ms fsyncs.
    const std::size_t n = batch == 1 ? records / 10 : records;
    const WalRow row = bench_wal(dir, n, batch);
    std::printf(
        "wal batch=%-3zu %9zu records in %6.2fs  %10.0f rec/s  %7.2f MB/s  "
        "fsync p50/p99/max %.0f/%.0f/%.0f us (%zu syncs)\n",
        row.batch, row.records, row.seconds, row.records_per_s, row.mb_per_s,
        row.fsync_us.p50, row.fsync_us.p99, row.fsync_max_us, row.fsyncs);
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "%s    {\"batch\": %zu, \"records\": %zu, \"seconds\": %.3f, "
                  "\"records_per_s\": %.0f, \"mb_per_s\": %.2f, \"fsyncs\": %zu, "
                  "\"fsync_us\": {\"p50\": %.1f, \"p99\": %.1f, \"max\": %.1f}}",
                  first ? "" : ",\n", row.batch, row.records, row.seconds,
                  row.records_per_s, row.mb_per_s, row.fsyncs, row.fsync_us.p50,
                  row.fsync_us.p99, row.fsync_max_us);
    json << buf;
    first = false;
  }
  json << "\n  ],\n  \"snapshot_format\": 2,\n  \"cold_restart\": [\n";

  std::vector<std::size_t> sweep = {1000, 100000, 1000000};
  if (quick) sweep.pop_back();
  first = true;
  bool gate_failed = false;
  for (const std::size_t rrsets : sweep) {
    const RestartRow row = bench_restart(dir, rrsets, threads);
    std::printf(
        "restart %8zu rrsets  zone %9zu B  snapshot %9zu B  parse %8.2f ms  "
        "(v1 %8.2f ms)  open %8.2f ms\n",
        row.rrsets, row.zone_bytes, row.snapshot_bytes, row.zone_parse_ms,
        row.zone_parse_v1_us / 1e3, row.open_ms);
    if (max_parse_us > 0 && rrsets == 100000 && row.zone_parse_us > max_parse_us) {
      std::fprintf(stderr,
                   "perf gate: 100k-RRset zone parse %.0f us exceeds --max-parse-us "
                   "%.0f\n",
                   row.zone_parse_us, max_parse_us);
      gate_failed = true;
    }
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%s    {\"rrsets\": %zu, \"zone_bytes\": %zu, \"snapshot_bytes\": %zu, "
        "\"wal_tail_records\": %zu, \"parse_threads\": %u, "
        "\"zone_parse_us\": %.0f, \"zone_parse_v1_us\": %.0f, "
        "\"zone_parse_ms\": %.2f, \"open_ms\": %.2f}",
        first ? "" : ",\n", row.rrsets, row.zone_bytes, row.snapshot_bytes,
        row.wal_tail, row.parse_threads, row.zone_parse_us, row.zone_parse_v1_us,
        row.zone_parse_ms, row.open_ms);
    json << buf;
    first = false;
  }
  json << "\n  ]\n}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
  }
  if (!owned.empty()) {
    const std::string cleanup = "rm -rf '" + owned + "'";
    (void)std::system(cleanup.c_str());
  }
  return gate_failed ? 1 : 0;
}
