// Microbenchmarks of the real cryptographic substrate (google-benchmark).
//
// These document the actual C++ cost of the primitives whose 2004 Java cost
// the simulator's CostModel models, plus the DNS wire/zone operations.
#include <benchmark/benchmark.h>

#include "bignum/montgomery.hpp"
#include "bignum/prime.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "dns/dnssec.hpp"
#include "dns/message.hpp"
#include "threshold/context.hpp"
#include "threshold/fixtures.hpp"
#include "threshold/shoup.hpp"

namespace {

using namespace sdns;
using bn::BigInt;

const threshold::DealtKey& key_for_bits(std::size_t bits) {
  static const threshold::DealtKey k512 = [] {
    util::Rng rng(1);
    return threshold::deal_with_primes(rng, 4, 1, threshold::fixtures::safe_prime_256_a(),
                                       threshold::fixtures::safe_prime_256_b());
  }();
  static const threshold::DealtKey k1024 = [] {
    util::Rng rng(2);
    return threshold::deal_with_primes(rng, 4, 1, threshold::fixtures::safe_prime_512_a(),
                                       threshold::fixtures::safe_prime_512_b());
  }();
  return bits == 512 ? k512 : k1024;
}

void BM_Sha1(benchmark::State& state) {
  util::Rng rng(3);
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  util::Rng rng(4);
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(65536);

void BM_HmacSha1(benchmark::State& state) {
  util::Rng rng(5);
  const auto key = rng.bytes(20);
  const auto msg = rng.bytes(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha1(key, msg));
  }
}
BENCHMARK(BM_HmacSha1);

void BM_BigIntModExp(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  BigInt m = bn::random_bits(rng, bits);
  if (m.is_even()) m += BigInt(1);
  const BigInt base = bn::random_below(rng, m);
  const BigInt exp = bn::random_bits(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn::mod_pow(base, exp, m));
  }
}
BENCHMARK(BM_BigIntModExp)->Arg(512)->Arg(1024)->Arg(2048);

void BM_GeneratePrime(benchmark::State& state) {
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn::generate_prime(rng, 256, 16));
  }
}
BENCHMARK(BM_GeneratePrime)->Unit(benchmark::kMillisecond);

void BM_RsaSign(benchmark::State& state) {
  util::Rng rng(8);
  const auto key = crypto::rsa_generate(rng, static_cast<std::size_t>(state.range(0)));
  const auto msg = util::to_bytes("www.corp.example. 300 IN A 192.0.2.1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign_sha1(key, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  util::Rng rng(9);
  const auto key = crypto::rsa_generate(rng, 1024);
  const auto msg = util::to_bytes("www.corp.example. 300 IN A 192.0.2.1");
  const auto sig = crypto::rsa_sign_sha1(key, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_verify_sha1(key.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify);

void BM_ThresholdShare(benchmark::State& state) {
  const auto& key = key_for_bits(static_cast<std::size_t>(state.range(0)));
  const bool with_proof = state.range(1) != 0;
  util::Rng rng(10);
  const BigInt x = threshold::hash_to_element(key.pub, util::to_bytes("rrset"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        threshold::generate_share(key.pub, key.shares[0], x, with_proof, rng));
  }
}
BENCHMARK(BM_ThresholdShare)
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_ThresholdVerifyShare(benchmark::State& state) {
  const auto& key = key_for_bits(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(11);
  const BigInt x = threshold::hash_to_element(key.pub, util::to_bytes("rrset"));
  const auto share = threshold::generate_share(key.pub, key.shares[0], x, true, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold::verify_share(key.pub, x, share));
  }
}
BENCHMARK(BM_ThresholdVerifyShare)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_ThresholdAssemble(benchmark::State& state) {
  const auto& key = key_for_bits(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(12);
  const BigInt x = threshold::hash_to_element(key.pub, util::to_bytes("rrset"));
  std::vector<threshold::SignatureShare> shares;
  for (unsigned i = 1; i <= 2; ++i) {
    shares.push_back(threshold::generate_share(key.pub, key.shares[i - 1], x, false, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold::assemble(key.pub, x, shares));
  }
}
BENCHMARK(BM_ThresholdAssemble)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_ThresholdVerifySignature(benchmark::State& state) {
  const auto& key = key_for_bits(1024);
  util::Rng rng(13);
  const BigInt x = threshold::hash_to_element(key.pub, util::to_bytes("rrset"));
  std::vector<threshold::SignatureShare> shares;
  for (unsigned i = 1; i <= 2; ++i) {
    shares.push_back(threshold::generate_share(key.pub, key.shares[i - 1], x, false, rng));
  }
  const auto y = *threshold::assemble(key.pub, x, shares);
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold::verify_signature(key.pub, x, y));
  }
}
BENCHMARK(BM_ThresholdVerifySignature);

// ---- threshold hot path through the cached crypto context ------------------
// BM_VerifyShare / BM_Assemble are the acceptance benchmarks for the
// context + allocation-free-kernel + multi-exp fast path; before/after
// numbers are recorded in EXPERIMENTS.md and BENCH_crypto.json.

void BM_VerifyShare(benchmark::State& state) {
  const auto& key = key_for_bits(static_cast<std::size_t>(state.range(0)));
  auto ctx = threshold::CryptoContext::get(key.pub);
  util::Rng rng(20);
  const BigInt x = threshold::hash_to_element(key.pub, util::to_bytes("rrset"));
  const auto share = threshold::generate_share(*ctx, key.shares[0], x, true, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold::verify_share(*ctx, x, share));
  }
}
BENCHMARK(BM_VerifyShare)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_Assemble(benchmark::State& state) {
  const auto& key = key_for_bits(static_cast<std::size_t>(state.range(0)));
  auto ctx = threshold::CryptoContext::get(key.pub);
  util::Rng rng(21);
  const BigInt x = threshold::hash_to_element(key.pub, util::to_bytes("rrset"));
  std::vector<threshold::SignatureShare> shares;
  for (unsigned i = 1; i <= key.pub.t + 1; ++i) {
    shares.push_back(threshold::generate_share(*ctx, key.shares[i - 1], x, false, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold::assemble(*ctx, x, shares));
  }
}
BENCHMARK(BM_Assemble)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_GenerateShareProof(benchmark::State& state) {
  const auto& key = key_for_bits(static_cast<std::size_t>(state.range(0)));
  auto ctx = threshold::CryptoContext::get(key.pub);
  util::Rng rng(22);
  const BigInt x = threshold::hash_to_element(key.pub, util::to_bytes("rrset"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold::generate_share(*ctx, key.shares[0], x, true, rng));
  }
}
BENCHMARK(BM_GenerateShareProof)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

// ---- bignum kernels behind the fast path -----------------------------------

void BM_MontMul(benchmark::State& state) {
  const auto& key = key_for_bits(static_cast<std::size_t>(state.range(0)));
  bn::Montgomery mont(key.pub.N);
  util::Rng rng(23);
  const BigInt a = bn::random_below(rng, key.pub.N);
  const BigInt b = bn::random_below(rng, key.pub.N);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.mul(a, b));
  }
}
BENCHMARK(BM_MontMul)->Arg(512)->Arg(1024);

void BM_MontSqr(benchmark::State& state) {
  const auto& key = key_for_bits(static_cast<std::size_t>(state.range(0)));
  bn::Montgomery mont(key.pub.N);
  util::Rng rng(24);
  const BigInt a = bn::random_below(rng, key.pub.N);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.sqr(a));
  }
}
BENCHMARK(BM_MontSqr)->Arg(512)->Arg(1024);

// Simultaneous b1^e1 * b2^e2 with verify_share-shaped exponents (full-size z,
// 256-bit challenge) vs the two independent pows it replaces.
void BM_MultiExp(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const auto& key = key_for_bits(bits);
  bn::Montgomery mont(key.pub.N);
  util::Rng rng(25);
  const BigInt b1 = bn::random_below(rng, key.pub.N);
  const BigInt b2 = bn::random_below(rng, key.pub.N);
  const BigInt e1 = bn::random_bits(rng, bits + 512);
  const BigInt e2 = bn::random_bits(rng, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.pow2(b1, e1, b2, e2));
  }
}
BENCHMARK(BM_MultiExp)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_MultiExpAsTwoPows(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const auto& key = key_for_bits(bits);
  bn::Montgomery mont(key.pub.N);
  util::Rng rng(25);  // same stream as BM_MultiExp for identical operands
  const BigInt b1 = bn::random_below(rng, key.pub.N);
  const BigInt b2 = bn::random_below(rng, key.pub.N);
  const BigInt e1 = bn::random_bits(rng, bits + 512);
  const BigInt e2 = bn::random_bits(rng, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.mul(mont.pow(b1, e1), mont.pow(b2, e2)));
  }
}
BENCHMARK(BM_MultiExpAsTwoPows)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

// Fixed-base window evaluation vs the generic pow for a proof-sized exponent.
void BM_FixedBasePow(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const auto& key = key_for_bits(bits);
  bn::Montgomery mont(key.pub.N);
  bn::Montgomery::FixedBase fb(mont, key.pub.v, bits + 512 + 2);
  util::Rng rng(26);
  const BigInt e = bn::random_bits(rng, bits + 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fb.pow(e));
  }
}
BENCHMARK(BM_FixedBasePow)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_FixedBaseAsGenericPow(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const auto& key = key_for_bits(bits);
  bn::Montgomery mont(key.pub.N);
  util::Rng rng(26);  // same stream as BM_FixedBasePow
  const BigInt e = bn::random_bits(rng, bits + 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.pow(key.pub.v, e));
  }
}
BENCHMARK(BM_FixedBaseAsGenericPow)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_DnsMessageEncode(benchmark::State& state) {
  dns::Message m = dns::Message::make_query(1, dns::Name::parse("www.corp.example."),
                                            dns::RRType::kA);
  for (int i = 0; i < 4; ++i) {
    dns::ResourceRecord rr;
    rr.name = dns::Name::parse("www.corp.example.");
    rr.type = dns::RRType::kA;
    rr.ttl = 300;
    rr.rdata = dns::ARdata::from_text("192.0.2.1").encode();
    m.answers.push_back(rr);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.encode());
  }
}
BENCHMARK(BM_DnsMessageEncode);

void BM_DnsMessageDecode(benchmark::State& state) {
  dns::Message m = dns::Message::make_query(1, dns::Name::parse("www.corp.example."),
                                            dns::RRType::kA);
  for (int i = 0; i < 4; ++i) {
    dns::ResourceRecord rr;
    rr.name = dns::Name::parse("www.corp.example.");
    rr.type = dns::RRType::kA;
    rr.ttl = 300;
    rr.rdata = dns::ARdata::from_text("192.0.2.1").encode();
    m.answers.push_back(rr);
  }
  const auto wire = m.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Message::decode(wire));
  }
}
BENCHMARK(BM_DnsMessageDecode);

void BM_SignZone(benchmark::State& state) {
  util::Rng rng(14);
  const auto key = crypto::rsa_generate(rng, 512);
  const dns::Zone zone = dns::Zone::from_text(dns::Name::parse("z."), R"(
@ IN SOA ns.z. admin.z. 1 2 3 4 5
@ IN NS ns.z.
ns IN A 10.0.0.1
a IN A 10.0.0.2
b IN A 10.0.0.3
c IN A 10.0.0.4
)");
  for (auto _ : state) {
    dns::Zone copy = zone;
    benchmark::DoNotOptimize(dns::sign_zone(copy, key.pub, 0, 1000, [&](util::BytesView d) {
      return crypto::rsa_sign_sha1(key, d);
    }));
  }
}
BENCHMARK(BM_SignZone)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
