// Ablations around the client designs of §3.3 / §3.4:
//   - pragmatic (unmodified, single-server) vs voting (modified, majority);
//   - reads through atomic broadcast vs served directly from the gateway
//     (the last paragraph of §3.4: zones with rare updates can skip the
//     broadcast for reads entirely);
//   - liveness price of a mute gateway for the pragmatic client (the dig
//     timeout/round-robin retry of §3.4).
#include "bench_common.hpp"

using namespace sdns;
using namespace sdns::bench;

namespace {

double avg_read(core::ReplicatedService& svc, int trials) {
  double total = 0;
  for (int k = 0; k < trials; ++k) {
    auto r = svc.query(dns::Name::parse("www.corp.example."), dns::RRType::kA);
    if (!r.ok) std::fprintf(stderr, "warning: read failed\n");
    total += r.latency;
  }
  return total / trials;
}

double avg_add(core::ReplicatedService& svc, int trials, const char* tag) {
  double total = 0;
  for (int k = 0; k < trials; ++k) {
    auto r = svc.add_record(origin().child(std::string(tag) + std::to_string(k)),
                            "10.0.0.1");
    if (!r.ok) std::fprintf(stderr, "warning: add failed\n");
    total += r.latency;
    svc.settle();
  }
  return total / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = trials_from_args(argc, argv, 10);
  std::printf("=== Client-mode and read-path ablations, (4,0) Internet setup ===\n");
  std::printf("(averages of %d operations)\n\n", trials);

  std::printf("%-44s %9s %9s\n", "configuration", "read [s]", "add [s]");
  {
    core::ServiceOptions opt;
    opt.topology = sim::Topology::kInternet4;
    core::ReplicatedService svc(opt, origin(), kZoneText);
    std::printf("%-44s %9.3f %9.3f\n", "pragmatic client, reads via abcast",
                avg_read(svc, trials), avg_add(svc, trials, "p"));
  }
  {
    core::ServiceOptions opt;
    opt.topology = sim::Topology::kInternet4;
    opt.disseminate_reads = false;
    core::ReplicatedService svc(opt, origin(), kZoneText);
    std::printf("%-44s %9.3f %9.3f\n", "pragmatic client, direct reads (rare updates)",
                avg_read(svc, trials), avg_add(svc, trials, "d"));
  }
  {
    core::ServiceOptions opt;
    opt.topology = sim::Topology::kInternet4;
    opt.client_mode = core::ClientMode::kVoting;
    core::ReplicatedService svc(opt, origin(), kZoneText);
    std::printf("%-44s %9.3f %9.3f\n", "voting client (G1/G2), reads via abcast",
                avg_read(svc, trials), avg_add(svc, trials, "v"));
  }
  {
    core::ServiceOptions opt;
    opt.topology = sim::Topology::kInternet4;
    opt.client_mode = core::ClientMode::kVoting;
    opt.corrupted = {0};
    core::ReplicatedService svc(opt, origin(), kZoneText);
    std::printf("%-44s %9.3f %9.3f\n", "voting client, one corrupted replica",
                avg_read(svc, trials), avg_add(svc, trials, "w"));
  }
  {
    core::ServiceOptions opt;
    opt.topology = sim::Topology::kInternet4;
    opt.corrupted = {1};  // the pragmatic client's gateway
    opt.corruption_mode = core::CorruptionMode::kMute;
    opt.client_timeout = 2.0;
    core::ReplicatedService svc(opt, origin(), kZoneText);
    std::printf("%-44s %9.3f %9s\n", "pragmatic client, mute gateway (retry cost)",
                avg_read(svc, trials), "-");
  }
  std::printf(
      "\nNotes: direct reads cost one LAN round-trip plus the named lookup — the\n"
      "paper's \"no additional cost compared to unmodified secure DNS\". The voting\n"
      "client waits for t+1 identical responses, so its read latency tracks the\n"
      "(t+1)-th fastest replica rather than the gateway. A mute gateway costs the\n"
      "pragmatic client one full dig timeout before the next server answers.\n");
  return 0;
}
