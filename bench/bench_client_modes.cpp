// Ablations around the client designs of §3.3 / §3.4:
//   - pragmatic (unmodified, single-server) vs voting (modified, majority);
//   - reads through atomic broadcast vs served directly from the gateway
//     (the last paragraph of §3.4: zones with rare updates can skip the
//     broadcast for reads entirely);
//   - liveness price of a mute gateway for the pragmatic client (the dig
//     timeout/round-robin retry of §3.4).
#include "bench_common.hpp"

using namespace sdns;
using namespace sdns::bench;

namespace {

LatencySummary read_latency(core::ReplicatedService& svc, int trials) {
  std::vector<double> samples;
  for (int k = 0; k < trials; ++k) {
    auto r = svc.query(dns::Name::parse("www.corp.example."), dns::RRType::kA);
    if (!r.ok) std::fprintf(stderr, "warning: read failed\n");
    samples.push_back(r.latency);
  }
  return LatencySummary::of(samples);
}

LatencySummary add_latency(core::ReplicatedService& svc, int trials, const char* tag) {
  std::vector<double> samples;
  for (int k = 0; k < trials; ++k) {
    auto r = svc.add_record(origin().child(std::string(tag) + std::to_string(k)),
                            "10.0.0.1");
    if (!r.ok) std::fprintf(stderr, "warning: add failed\n");
    samples.push_back(r.latency);
    svc.settle();
  }
  return LatencySummary::of(samples);
}

void row(const char* label, const LatencySummary& read, const LatencySummary& add) {
  std::printf("%-44s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n", label, read.mean,
              read.p50, read.p99, add.mean, add.p50, add.p99);
}

void row(const char* label, const LatencySummary& read) {
  std::printf("%-44s %8.3f %8.3f %8.3f %8s %8s %8s\n", label, read.mean, read.p50,
              read.p99, "-", "-", "-");
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = trials_from_args(argc, argv, 10);
  std::printf("=== Client-mode and read-path ablations, (4,0) Internet setup ===\n");
  std::printf("(mean/p50/p99 over %d operations)\n\n", trials);

  std::printf("%-44s %26s %26s\n", "", "-------- read [s] -------",
              "-------- add [s] --------");
  std::printf("%-44s %8s %8s %8s %8s %8s %8s\n", "configuration", "mean", "p50",
              "p99", "mean", "p50", "p99");
  {
    core::ServiceOptions opt;
    opt.topology = sim::Topology::kInternet4;
    core::ReplicatedService svc(opt, origin(), kZoneText);
    row("pragmatic client, reads via abcast", read_latency(svc, trials),
        add_latency(svc, trials, "p"));
  }
  {
    core::ServiceOptions opt;
    opt.topology = sim::Topology::kInternet4;
    opt.disseminate_reads = false;
    core::ReplicatedService svc(opt, origin(), kZoneText);
    row("pragmatic client, direct reads (rare updates)", read_latency(svc, trials),
        add_latency(svc, trials, "d"));
  }
  {
    core::ServiceOptions opt;
    opt.topology = sim::Topology::kInternet4;
    opt.client_mode = core::ClientMode::kVoting;
    core::ReplicatedService svc(opt, origin(), kZoneText);
    row("voting client (G1/G2), reads via abcast", read_latency(svc, trials),
        add_latency(svc, trials, "v"));
  }
  {
    core::ServiceOptions opt;
    opt.topology = sim::Topology::kInternet4;
    opt.client_mode = core::ClientMode::kVoting;
    opt.corrupted = {0};
    core::ReplicatedService svc(opt, origin(), kZoneText);
    row("voting client, one corrupted replica", read_latency(svc, trials),
        add_latency(svc, trials, "w"));
  }
  {
    core::ServiceOptions opt;
    opt.topology = sim::Topology::kInternet4;
    opt.corrupted = {1};  // the pragmatic client's gateway
    opt.corruption_mode = core::CorruptionMode::kMute;
    opt.client_timeout = 2.0;
    core::ReplicatedService svc(opt, origin(), kZoneText);
    row("pragmatic client, mute gateway (retry cost)", read_latency(svc, trials));
  }
  std::printf(
      "\nNotes: direct reads cost one LAN round-trip plus the named lookup — the\n"
      "paper's \"no additional cost compared to unmodified secure DNS\". The voting\n"
      "client waits for t+1 identical responses, so its read latency tracks the\n"
      "(t+1)-th fastest replica rather than the gateway. A mute gateway costs the\n"
      "pragmatic client one full dig timeout before the next server answers.\n");
  return 0;
}
