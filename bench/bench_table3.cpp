// Reproduces Table 3: breakdown of the time spent in one BASIC threshold
// signature on the (4,0)* LAN setup.
//
// Two views are printed:
//   1. The calibrated model: operation counts observed at the gateway during
//      a real BASIC signing session, priced with the cost model (which was
//      fitted to the paper's 266 MHz / Java BigInteger measurements).
//   2. The real cost of the same operations in this C++ implementation
//      (wall-clock microseconds, 1024-bit modulus), to document the gap
//      between 2004 Java and modern C++.
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>

#include "sim/costmodel.hpp"
#include "threshold/fixtures.hpp"
#include "threshold/protocol.hpp"

using namespace sdns;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main() {
  std::printf("=== Table 3: breakdown of one BASIC threshold signature, (4,0)* ===\n\n");

  // Run one real BASIC signing round among 4 parties in-memory and count the
  // gateway's operations.
  util::Rng rng(33);
  auto key = threshold::deal_with_primes(rng, 4, 1, threshold::fixtures::safe_prime_512_a(),
                                         threshold::fixtures::safe_prime_512_b());
  const bn::BigInt x =
      threshold::hash_to_element(key.pub, util::to_bytes("www.corp.example. A"));

  int counts[8] = {};
  std::deque<std::pair<unsigned, util::Bytes>> queue;
  std::vector<std::unique_ptr<threshold::SigningSession>> sessions;
  for (unsigned i = 1; i <= 4; ++i) {
    threshold::SessionCallbacks cb;
    cb.send_to_all = [&queue, i](const util::Bytes& m) {
      for (unsigned j = 1; j <= 4; ++j) {
        if (j != i) queue.push_back({j, m});
      }
    };
    if (i == 1) {  // the gateway
      cb.charge = [&counts](threshold::CryptoOp op) { ++counts[static_cast<int>(op)]; };
    }
    sessions.push_back(std::make_unique<threshold::SigningSession>(
        key.pub, key.shares[i - 1], threshold::SigProtocol::kBasic, 1, x, std::move(cb),
        rng.fork()));
  }
  for (auto& s : sessions) s->start();
  while (!queue.empty()) {
    auto [to, msg] = queue.front();
    queue.pop_front();
    sessions[to - 1]->on_message(msg);
  }

  const sim::CostModel model;
  struct Row {
    const char* label;
    double seconds;
  };
  const double gen = counts[static_cast<int>(threshold::CryptoOp::kShareValue)] *
                         model.share_value +
                     counts[static_cast<int>(threshold::CryptoOp::kProofGen)] *
                         model.proof_gen;
  const double verify = counts[static_cast<int>(threshold::CryptoOp::kProofVerify)] *
                        model.proof_verify;
  const double assemble =
      counts[static_cast<int>(threshold::CryptoOp::kAssemble)] * model.assemble;
  const double final_verify =
      counts[static_cast<int>(threshold::CryptoOp::kFinalVerify)] * model.final_verify;
  const double total = gen + verify + assemble + final_verify;
  const Row rows[] = {{"generate share", gen},
                      {"verify share", verify},
                      {"assemble sig.", assemble},
                      {"verify sig.", final_verify}};
  std::printf("Modeled on the PII-266 reference machine (gateway's ops):\n");
  std::printf("%-16s %12s %10s\n", "operation", "absolute [s]", "relative");
  for (const Row& r : rows) {
    std::printf("%-16s %12.3f %9.1f%%\n", r.label, r.seconds, 100.0 * r.seconds / total);
  }
  std::printf("%-16s %12.3f\n\n", "total", total);
  std::printf("Paper's Table 3:  generate 0.82 (49.6%%) | verify 0.78 (47.2%%) | "
              "assemble 0.05 (3.0%%) | verify sig 0.003 (0.2%%)\n\n");

  // Real costs of this implementation (1024-bit modulus).
  std::printf("Actual cost of the same operations in this C++ implementation\n");
  std::printf("(1024-bit modulus, single core, milliseconds per op):\n");
  util::Rng r2(34);
  auto t0 = Clock::now();
  constexpr int kIters = 20;
  threshold::SignatureShare share_with_proof;
  for (int i = 0; i < kIters; ++i) {
    share_with_proof = threshold::generate_share(key.pub, key.shares[1], x, true, r2);
  }
  std::printf("%-24s %8.3f ms\n", "generate share+proof", ms_since(t0) / kIters);
  t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) {
    (void)threshold::verify_share(key.pub, x, share_with_proof);
  }
  std::printf("%-24s %8.3f ms\n", "verify share proof", ms_since(t0) / kIters);
  std::vector<threshold::SignatureShare> shares;
  for (unsigned i = 1; i <= 2; ++i) {
    shares.push_back(threshold::generate_share(key.pub, key.shares[i - 1], x, false, r2));
  }
  t0 = Clock::now();
  std::optional<bn::BigInt> y;
  for (int i = 0; i < kIters; ++i) y = threshold::assemble(key.pub, x, shares);
  std::printf("%-24s %8.3f ms\n", "assemble signature", ms_since(t0) / kIters);
  t0 = Clock::now();
  for (int i = 0; i < kIters; ++i) (void)threshold::verify_signature(key.pub, x, *y);
  std::printf("%-24s %8.3f ms\n", "verify signature", ms_since(t0) / kIters);
  return 0;
}
