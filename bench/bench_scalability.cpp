// Scalability ablation: how the replicated service scales with group size.
//
// The paper evaluates n = 4 and n = 7 and conjectures about larger groups
// ("the algorithm may take exponential time in n when t is a fraction of n"
// for OptTE; BASIC's verification work grows with t). This sweep quantifies
// both, plus the atomic-broadcast message complexity, on a uniform LAN so
// topology effects do not mix with group-size effects.
#include "bench_common.hpp"

#include "abcast/broadcast.hpp"
#include "sim/network.hpp"

using namespace sdns;
using namespace sdns::bench;

namespace {

// A LAN service with arbitrary n (the Table-2 testbeds cap at 7, so this
// builds the network by hand through the sim::Topology::kLan4 machine spec).
struct LanStats {
  double read = 0, add = 0;
  double msgs_per_add = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int trials = trials_from_args(argc, argv, 5);
  std::printf("=== Scalability with group size (uniform Zurich-class LAN) ===\n");
  std::printf("(avg of %d ops; OptTE unless noted; k = t corruptions for the\n"
              " worst-case columns)\n\n",
              trials);
  std::printf("%4s %3s | %9s %9s | %12s %14s\n", "n", "t", "add(k=0)", "add(k=t)",
              "read [s]", "msgs/add");

  for (unsigned n : {4u, 7u, 10u}) {
    const unsigned t = (n - 1) / 3;
    // Reuse the largest predefined topology and extend conceptually: for
    // n > 7 we fall back to a uniform default-latency network, which the
    // ReplicatedService builds only for its known topologies — so measure
    // n = 10 with the abcast-only fleet for messages and the service for
    // n <= 7.
    if (n <= 7) {
      Setup clean{"", n == 4 ? sim::Topology::kLan4 : sim::Topology::kInternet7, {}};
      Setup dirty = clean;
      for (unsigned k = 0; k < t; ++k) dirty.corrupted.push_back(k == 0 ? 0 : 5);
      const Stats s_clean = measure(clean, threshold::SigProtocol::kOptTE, trials);
      const Stats s_dirty = measure(dirty, threshold::SigProtocol::kOptTE, trials);

      core::ServiceOptions opt;
      opt.topology = clean.topology;
      core::ReplicatedService svc(opt, origin(), kZoneText);
      svc.net().reset_stats();
      (void)svc.add_record(origin().child("mcount"), "10.0.0.1");
      svc.settle();
      std::printf("%4u %3u | %9.2f %9.2f | %12.3f %14llu\n", n, t, s_clean.add,
                  s_dirty.add, s_clean.read,
                  static_cast<unsigned long long>(svc.net().messages_sent()));
    } else {
      // Message complexity of the broadcast substrate alone at n = 10.
      util::Rng rng(555);
      auto group = abcast::generate_group(rng, n, t, 512);
      sim::Simulator sim;
      sim::Network net(sim, util::Rng(556), n, 0.00015);
      std::vector<std::unique_ptr<abcast::AtomicBroadcast>> nodes;
      util::Rng fork(557);
      double last_delivery = 0;
      for (unsigned i = 0; i < n; ++i) {
        abcast::AtomicBroadcast::Callbacks cb;
        cb.send = [&net, i](unsigned to, const util::Bytes& m) { net.send(i, to, m); };
        cb.deliver = [&sim, &last_delivery](const util::Bytes&) {
          last_delivery = std::max(last_delivery, sim.now());
        };
        cb.now = [&sim] { return sim.now(); };
        cb.set_timer = [&sim, &net, i](double d, std::function<void()> fn) {
          sim.schedule(d, [&net, &sim, i, fn = std::move(fn)] {
            net.cpu(i).enqueue(sim.now(), fn);
          });
        };
        nodes.push_back(std::make_unique<abcast::AtomicBroadcast>(
            group.pub, group.secrets[i], std::move(cb), abcast::AtomicBroadcast::Options{},
            fork.fork()));
        net.set_handler(i, [&nodes, i](sim::NodeId from, util::Bytes m) {
          nodes[i]->on_message(static_cast<unsigned>(from), m);
        });
      }
      net.reset_stats();
      nodes[1]->submit(util::to_bytes("payload"));
      sim.run();
      std::printf("%4u %3u | %9s %9s | %12.4f %14llu  (abcast only)\n", n, t, "-", "-",
                  last_delivery,
                  static_cast<unsigned long long>(net.messages_sent()));
    }
  }
  std::printf("\nObservations: message count grows O(n^2) per request; OptTE's\n"
              "worst-case assembly tries up to C(2t+1, t+1) subsets, visible in the\n"
              "k=t column; reads grow only mildly with n (quorum size).\n");
  return 0;
}
