// Ablation for the paper's §5.3 claims: how each threshold-signature
// protocol degrades as the number of actually-corrupted servers k grows.
//
//  - "the optimized signature protocols decrease the time taken by write
//    requests by a factor of four to six";
//  - "the performance of the OptProof protocol deteriorates much faster with
//    an increasing number of corrupted servers than that of the OptTE
//    protocol".
#include "bench_common.hpp"

using namespace sdns;
using namespace sdns::bench;

int main(int argc, char** argv) {
  const int trials = trials_from_args(argc, argv, 10);
  std::printf("=== Corruption sweep: add latency vs k, (7,t=2) Internet setup ===\n");
  std::printf("(avg of %d adds; corrupted servers per the paper: Zurich first, then Austin)\n\n",
              trials);
  const std::vector<std::vector<unsigned>> corruption_sets = {{}, {0}, {0, 5}};
  std::printf("%3s | %9s %9s %9s | OPTPROOF/OPTTE ratio\n", "k", "BASIC", "OPTPROOF",
              "OPTTE");
  double basic_k0 = 0, optte_k0 = 0;
  for (std::size_t k = 0; k < corruption_sets.size(); ++k) {
    Setup setup{"(7,k)", sim::Topology::kInternet7, corruption_sets[k]};
    const Stats basic = measure(setup, threshold::SigProtocol::kBasic, trials);
    const Stats optproof = measure(setup, threshold::SigProtocol::kOptProof, trials);
    const Stats optte = measure(setup, threshold::SigProtocol::kOptTE, trials);
    if (k == 0) {
      basic_k0 = basic.add;
      optte_k0 = optte.add;
    }
    std::printf("%3zu | %9.2f %9.2f %9.2f | %6.2f\n", k, basic.add, optproof.add,
                optte.add, optproof.add / optte.add);
  }
  std::printf("\nClaim checks (paper section 5.3):\n");
  std::printf("  BASIC / OPTTE speedup at k=0: %.1fx (paper: 4-6x; theirs 9.4x at n=7)\n",
              basic_k0 / optte_k0);
  std::printf("  OPTPROOF deteriorates toward BASIC at k=t while OPTTE stays near its\n"
              "  fault-free latency (compare the columns above with the paper's row\n"
              "  (7,2): BASIC 21.21, OPTPROOF 15.79, OPTTE 4.01).\n");
  return 0;
}
