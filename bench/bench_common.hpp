// Shared helpers for the table/figure reproduction benchmarks.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/service.hpp"

namespace sdns::bench {

constexpr const char* kZoneText = R"(
@     IN SOA ns1.corp.example. hostmaster.corp.example. 100 7200 1200 604800 600
@     IN NS  ns1.corp.example.
@     IN NS  ns2.corp.example.
@     IN MX  10 mail.corp.example.
ns1   IN A   192.0.2.53
ns2   IN A   192.0.2.54
mail  IN A   192.0.2.25
www   IN A   192.0.2.80
)";

inline dns::Name origin() { return dns::Name::parse("corp.example."); }

/// One experiment row of Table 2: a topology plus k simulated corruptions.
struct Setup {
  const char* label;
  sim::Topology topology;
  std::vector<unsigned> corrupted;
};

/// The paper's rows. Corrupted servers follow §5.1: one corruption is a
/// Zurich server; the second is Austin.
inline std::vector<Setup> table2_setups() {
  return {
      {"(1,0)", sim::Topology::kSingleZurich, {}},
      {"(4,0)*", sim::Topology::kLan4, {}},
      {"(4,0)", sim::Topology::kInternet4, {}},
      {"(4,1)", sim::Topology::kInternet4, {0}},
      {"(7,0)", sim::Topology::kInternet7, {}},
      {"(7,1)", sim::Topology::kInternet7, {0}},
      {"(7,2)", sim::Topology::kInternet7, {0, 5}},
  };
}

inline int trials_from_args(int argc, char** argv, int fallback = 20) {
  for (int i = 1; i + 1 < argc + 1; ++i) {
    if (i < argc && std::string(argv[i]).rfind("--trials=", 0) == 0) {
      return std::atoi(argv[i] + 9);
    }
  }
  if (const char* env = std::getenv("SDNS_BENCH_TRIALS")) return std::atoi(env);
  return fallback;
}

/// Linear-interpolated percentile of an unsorted sample set (p in [0, 1]).
inline double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1 - frac) + samples[hi] * frac;
}

/// Mean / median / tail summary of a latency sample set. Averages alone hide
/// the retry and view-change tail, which is exactly what Byzantine-fault
/// experiments are about — so benches report p50/p99 alongside the mean.
struct LatencySummary {
  double mean = 0;
  double p50 = 0;
  double p99 = 0;

  static LatencySummary of(const std::vector<double>& samples) {
    LatencySummary s;
    if (samples.empty()) return s;
    s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
             static_cast<double>(samples.size());
    s.p50 = percentile(samples, 0.50);
    s.p99 = percentile(samples, 0.99);
    return s;
  }
};

struct Stats {
  double read = 0;
  double add = 0;
  double del = 0;
  LatencySummary read_summary;
  LatencySummary add_summary;
  LatencySummary del_summary;
};

/// Run `trials` read + add + delete cycles against a fresh service and
/// return average latencies in seconds (reads averaged over all trials).
inline Stats measure(const Setup& setup, threshold::SigProtocol protocol, int trials,
                     std::uint64_t seed = 7) {
  core::ServiceOptions opt;
  opt.topology = setup.topology;
  opt.corrupted = setup.corrupted;
  opt.sig_protocol = protocol;
  opt.seed = seed;
  core::ReplicatedService svc(opt, origin(), kZoneText);
  Stats out;
  std::vector<double> reads, adds, dels;
  for (int k = 0; k < trials; ++k) {
    auto read = svc.query(dns::Name::parse("www.corp.example."), dns::RRType::kA);
    if (!read.ok) std::fprintf(stderr, "warning: read %d failed\n", k);
    reads.push_back(read.latency);
    const dns::Name host = origin().child("host" + std::to_string(k));
    auto add = svc.add_record(host, "10.0.0.1");
    if (!add.ok) std::fprintf(stderr, "warning: add %d failed\n", k);
    adds.push_back(add.latency);
    auto del = svc.delete_record(host);
    if (!del.ok) std::fprintf(stderr, "warning: delete %d failed\n", k);
    dels.push_back(del.latency);
    svc.settle();  // let all replicas finish their signature work
  }
  out.read_summary = LatencySummary::of(reads);
  out.add_summary = LatencySummary::of(adds);
  out.del_summary = LatencySummary::of(dels);
  out.read = out.read_summary.mean;
  out.add = out.add_summary.mean;
  out.del = out.del_summary.mean;
  return out;
}

}  // namespace sdns::bench
