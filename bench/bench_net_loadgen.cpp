// Loopback QPS/latency baseline for the real transport (BENCH_net.json).
//
// Deals a fresh (4,1) cluster into a temp directory, forks four sdnsd-
// equivalent replica processes (same code path: EventLoop + ReplicaRuntime),
// drives cached A queries at a fixed open-loop rate from a Loadgen on the
// parent's own event loop, and prints a JSON report with achieved QPS and
// latency percentiles.
//
//   bench_net_loadgen [--rate QPS] [--duration S] [--dir DIR] [--json FILE]
//                     [--shards N] [--sockets N] [--min-qps QPS]
//
// The configuration is the §3.4 rare-update mode (disseminate_reads=false):
// reads are answered from the replica's local signed zone without a round of
// atomic broadcast — the path a production resolver-facing deployment runs.
// --shards runs each replica with N SO_REUSEPORT frontend shards; --sockets
// spreads the driver across that many source ports so the kernel's 4-tuple
// hash actually reaches every shard (defaults to the shard count).
//
// Beyond the delivery bar, the run fails if --min-qps is not sustained or if
// the pure-read invariant breaks: a read-only workload must never increment
// the TSIG or opcode cache-bypass counters.
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "net/cluster.hpp"
#include "net/loadgen.hpp"
#include "net/resolver.hpp"
#include "net/runtime.hpp"

using namespace sdns;

namespace {

int run_replica(const std::string& config_path) {
  try {
    net::EventLoop loop;
    net::ReplicaRuntime runtime(loop, net::RuntimeConfig::load(config_path));
    runtime.start();
    loop.run();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replica %s: %s\n", config_path.c_str(), e.what());
    return 1;
  }
}

// Scrape one replica's live counters over `stats.sdns. CH TXT` — the same
// endpoint sdns_dig's `+ch` uses. Returns an empty map when unreachable.
std::map<std::string, std::string> scrape_counters(const net::SockAddr& addr) {
  std::map<std::string, std::string> out;
  net::StubResolver::Options ropt;
  ropt.servers = {addr};
  ropt.timeout = 1.0;
  ropt.attempts = 3;
  ropt.edns_payload = 4096;  // the sample set does not fit in 512 bytes
  net::StubResolver scraper(ropt);
  const auto r = scraper.query(dns::Name::parse("stats.sdns."),
                               dns::RRType::kTXT, dns::RRClass::kCH);
  if (!r.ok) return out;
  for (const dns::ResourceRecord& rr : r.response.answers) {
    if (rr.type != dns::RRType::kTXT || rr.rdata.empty()) continue;
    const std::size_t len = rr.rdata[0];
    if (1 + len > rr.rdata.size()) continue;
    const std::string txt(rr.rdata.begin() + 1,
                          rr.rdata.begin() + 1 + static_cast<std::ptrdiff_t>(len));
    const auto eq = txt.find('=');
    if (eq != std::string::npos) out[txt.substr(0, eq)] = txt.substr(eq + 1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double rate = 6000;
  double duration = 5.0;
  double min_qps = 0;
  unsigned shards = 1;
  unsigned sockets = 0;  // 0: match the shard count
  std::string dir = "/tmp/sdns_loadgen_cluster";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      rate = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-qps") == 0 && i + 1 < argc) {
      min_qps = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--sockets") == 0 && i + 1 < argc) {
      sockets = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--rate QPS] [--duration S] [--dir DIR] "
                   "[--json FILE] [--shards N] [--sockets N] [--min-qps QPS]\n",
                   argv[0]);
      return 2;
    }
  }
  if (shards < 1) shards = 1;
  if (sockets == 0) sockets = shards;

  std::string mkdir_cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  if (std::system(mkdir_cmd.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  net::ClusterOptions copt;
  copt.n = 4;
  copt.t = 1;
  copt.dns_base_port = 6300;
  copt.mesh_base_port = 6400;
  copt.seed = 11;
  copt.shards = shards;
  std::fprintf(stderr, "dealing cluster keys...\n");
  const net::ClusterFiles files = net::generate_cluster(dir, copt);

  std::vector<pid_t> children;
  for (const std::string& config : files.configs) {
    const pid_t pid = ::fork();
    if (pid == 0) std::_Exit(run_replica(config));
    children.push_back(pid);
  }

  // Wait for the cluster to come up (all four answer a probe query).
  {
    net::StubResolver::Options ropt;
    ropt.timeout = 0.5;
    ropt.attempts = 40;
    for (const net::SockAddr& addr : files.dns_addrs) {
      ropt.servers = {addr};
      net::StubResolver probe(ropt);
      const auto r = probe.query(dns::Name::parse("www.example.com."),
                                 dns::RRType::kA);
      if (!r.ok) {
        std::fprintf(stderr, "replica at %s never came up\n",
                     addr.to_string().c_str());
        for (pid_t pid : children) ::kill(pid, SIGTERM);
        return 1;
      }
    }
  }

  std::fprintf(stderr, "cluster up; driving %.0f qps for %.1f s...\n", rate,
               duration);
  net::EventLoop loop;
  net::Loadgen::Options lopt;
  lopt.servers = files.dns_addrs;
  lopt.name = dns::Name::parse("www.example.com.");
  lopt.rate = rate;
  lopt.duration = duration;
  lopt.sockets = sockets;
  net::Loadgen loadgen(loop, lopt);
  loadgen.start();
  loop.run();
  const net::Loadgen::Report r = loadgen.report();

  // Scrape each replica's counters while it is still alive: server-side
  // query totals, the server-observed latency histogram, and — the run's
  // fault-free invariant — zero abcast fallbacks.
  std::vector<std::map<std::string, std::string>> counters;
  for (const net::SockAddr& addr : files.dns_addrs) {
    counters.push_back(scrape_counters(addr));
  }

  for (pid_t pid : children) ::kill(pid, SIGTERM);
  for (pid_t pid : children) ::waitpid(pid, nullptr, 0);

  bool fallback_free = true;
  bool bypass_clean = true;
  std::uint64_t cache_hits = 0, cache_misses = 0;
  std::ostringstream replicas_json;
  for (std::size_t i = 0; i < counters.size(); ++i) {
    const auto& c = counters[i];
    auto get = [&c](const char* key) -> std::string {
      auto it = c.find(key);
      return it == c.end() ? "0" : it->second;
    };
    if (c.empty() || get("abcast.fallback") != "0") fallback_free = false;
    // A pure-read, unsigned workload must never take the TSIG or opcode
    // bypass — either one firing means signed/update traffic slipped into
    // the cacheable path or vice versa.
    if (get("net.cache.bypass.tsig") != "0" ||
        get("net.cache.bypass.opcode") != "0") {
      bypass_clean = false;
    }
    cache_hits += std::stoull(get("net.cache.hits"));
    cache_misses += std::stoull(get("net.cache.misses"));
    replicas_json << "    {\n"
                  << "      \"replica\": " << i << ",\n"
                  << "      \"scraped\": " << (c.empty() ? "false" : "true")
                  << ",\n"
                  << "      \"udp_queries\": " << get("net.udp.queries") << ",\n"
                  << "      \"replica_reads\": " << get("replica.reads") << ",\n"
                  << "      \"abcast_fallback\": " << get("abcast.fallback")
                  << ",\n"
                  << "      \"cache_hits\": " << get("net.cache.hits") << ",\n"
                  << "      \"cache_misses\": " << get("net.cache.misses")
                  << ",\n"
                  << "      \"cache_bypass_tsig\": "
                  << get("net.cache.bypass.tsig") << ",\n"
                  << "      \"cache_bypass_opcode\": "
                  << get("net.cache.bypass.opcode") << ",\n"
                  << "      \"query_latency_us\": {\n"
                  << "        \"count\": " << get("net.query.latency_us.count")
                  << ",\n"
                  << "        \"p50\": " << get("net.query.latency_us.p50")
                  << ",\n"
                  << "        \"p99\": " << get("net.query.latency_us.p99")
                  << ",\n"
                  << "        \"max\": " << get("net.query.latency_us.max")
                  << "\n"
                  << "      }\n"
                  << "    }" << (i + 1 < counters.size() ? "," : "") << "\n";
  }
  const double cache_hit_rate =
      (cache_hits + cache_misses) > 0
          ? static_cast<double>(cache_hits) /
                static_cast<double>(cache_hits + cache_misses)
          : 0.0;

  char json[2048];
  std::snprintf(json, sizeof json,
                "{\n"
                "  \"benchmark\": \"net_loadgen_loopback\",\n"
                "  \"topology\": \"(4,1) localhost, direct reads\",\n"
                "  \"shards\": %u,\n"
                "  \"driver_sockets\": %u,\n"
                "  \"offered_qps\": %.0f,\n"
                "  \"duration_s\": %.1f,\n"
                "  \"sent\": %llu,\n"
                "  \"received\": %llu,\n"
                "  \"achieved_qps\": %.0f,\n"
                "  \"cache_hit_rate\": %.4f,\n"
                "  \"latency_ms\": {\n"
                "    \"mean\": %.3f,\n"
                "    \"p50\": %.3f,\n"
                "    \"p90\": %.3f,\n"
                "    \"p99\": %.3f,\n"
                "    \"p999\": %.3f,\n"
                "    \"max\": %.3f\n"
                "  },\n"
                "  \"replica_counters\": [\n",
                shards, sockets, rate, duration,
                static_cast<unsigned long long>(r.sent),
                static_cast<unsigned long long>(r.received), r.achieved_qps,
                cache_hit_rate, r.mean * 1e3, r.p50 * 1e3, r.p90 * 1e3,
                r.p99 * 1e3, r.p999 * 1e3, r.max * 1e3);
  std::string full = json;
  full += replicas_json.str();
  full += "  ]\n}\n";
  std::fputs(full.c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << full;
  }
  // ≥95% answered at the offered rate counts as sustaining it, a fault-free
  // run must never leave the optimistic abcast path, a pure-read run must
  // never trip the TSIG/opcode cache bypass, and --min-qps (when given) is
  // the regression floor.
  const bool delivered = r.received >= static_cast<std::uint64_t>(0.95 * r.sent);
  // 2% tolerance: achieved = received / elapsed quantizes a hair below the
  // offered rate even at 100% delivery, so an exact floor would always fail.
  const bool fast_enough = min_qps <= 0 || r.achieved_qps >= 0.98 * min_qps;
  const bool ok = delivered && fallback_free && bypass_clean && fast_enough;
  std::fprintf(stderr,
               "%s: %llu/%llu answered, %.0f qps (floor %.0f), "
               "cache hit rate %.3f, %s, %s\n",
               ok ? "PASS" : "FAIL",
               static_cast<unsigned long long>(r.received),
               static_cast<unsigned long long>(r.sent), r.achieved_qps, min_qps,
               cache_hit_rate,
               fallback_free ? "fallback-free" : "FALLBACK OBSERVED",
               bypass_clean ? "bypass-clean" : "CACHE BYPASS TRIPPED");
  return ok ? 0 : 1;
}
