// Loopback QPS/latency baseline for the real transport (BENCH_net.json).
//
// Deals a fresh (4,1) cluster into a temp directory, forks four sdnsd-
// equivalent replica processes (same code path: EventLoop + ReplicaRuntime),
// drives cached A queries at a fixed open-loop rate from a Loadgen on the
// parent's own event loop, and prints a JSON report with achieved QPS,
// latency percentiles, and syscall-batching accounting.
//
//   bench_net_loadgen [--rate QPS] [--duration S] [--dir DIR] [--json FILE]
//                     [--shards N] [--sockets N] [--batch N] [--min-qps QPS]
//                     [--edges N] [--matrix CxS:RATE[:MIN[:BATCH]]]...
//                     [--fail-on-send-errors]
//
// The configuration is the §3.4 rare-update mode (disseminate_reads=false):
// reads are answered from the replica's local signed zone without a round of
// atomic broadcast — the path a production resolver-facing deployment runs.
// --shards runs each replica with N SO_REUSEPORT frontend shards; --sockets
// spreads the driver across that many source ports so the kernel's 4-tuple
// hash actually reaches every shard (defaults to the shard count); --batch
// caps the datagrams per sendmmsg/recvmmsg syscall (the sweep knob).
//
// --matrix turns one invocation into a cores × shards scaling run: each cell
// "CxS:RATE[:MIN[:BATCH]]" deals its own cluster, pins the replica processes
// onto the first C cores (round-robin) with sched_setaffinity, drives RATE
// qps, and enforces MIN as that cell's floor. Cells asking for more cores
// than the machine has are reported as skipped, not failed, so one matrix
// works across container sizes.
//
// --edges runs the replication-edge scenario instead: the (4,1) core takes
// sustained TSIG-signed RFC 2136 update load while N forked sdns_edge
// processes serve the offered read rate from their packet caches; the run
// passes only if every edge serves the last committed write within the
// propagation window (no-stale probe) with zero verification failures.
//
// Beyond the delivery bar, a cell fails if its floor is not sustained or the
// pure-read invariant breaks (a read-only workload must never increment the
// TSIG or opcode cache-bypass counters). --fail-on-send-errors additionally
// fails the run when any driver- or server-side kernel-refused send was
// counted — the batched datapath accounts every ENOBUFS/EAGAIN instead of
// dropping silently, so a clean loopback run must report zero.
#include <sched.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/cluster.hpp"
#include "net/edge.hpp"
#include "net/loadgen.hpp"
#include "net/resolver.hpp"
#include "net/runtime.hpp"

using namespace sdns;

namespace {

int run_replica(const std::string& config_path) {
  try {
    net::EventLoop loop;
    net::ReplicaRuntime runtime(loop, net::RuntimeConfig::load(config_path));
    runtime.start();
    loop.run();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replica %s: %s\n", config_path.c_str(), e.what());
    return 1;
  }
}

int run_edge(const std::string& config_path) {
  try {
    net::EventLoop loop;
    net::EdgeConfig config = net::EdgeConfig::load(config_path);
    // Loadgen cadence: retry the bootstrap fast, and keep the SOA-refresh
    // backstop tight enough that a lost NOTIFY can't dominate propagation.
    config.retry_interval = 0.2;
    config.refresh_interval = 2.0;
    net::EdgeRuntime runtime(loop, std::move(config));
    runtime.start();
    loop.run();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "edge %s: %s\n", config_path.c_str(), e.what());
    return 1;
  }
}

// Scrape one replica's live counters over `stats.sdns. CH TXT` — the same
// endpoint sdns_dig's `+ch` uses. Returns an empty map when unreachable.
std::map<std::string, std::string> scrape_counters(const net::SockAddr& addr) {
  std::map<std::string, std::string> out;
  net::StubResolver::Options ropt;
  ropt.servers = {addr};
  ropt.timeout = 1.0;
  ropt.attempts = 3;
  ropt.edns_payload = 4096;  // the sample set does not fit in 512 bytes
  net::StubResolver scraper(ropt);
  const auto r = scraper.query(dns::Name::parse("stats.sdns."),
                               dns::RRType::kTXT, dns::RRClass::kCH);
  if (!r.ok) return out;
  for (const dns::ResourceRecord& rr : r.response.answers) {
    if (rr.type != dns::RRType::kTXT || rr.rdata.empty()) continue;
    const std::size_t len = rr.rdata[0];
    if (1 + len > rr.rdata.size()) continue;
    const std::string txt(rr.rdata.begin() + 1,
                          rr.rdata.begin() + 1 + static_cast<std::ptrdiff_t>(len));
    const auto eq = txt.find('=');
    if (eq != std::string::npos) out[txt.substr(0, eq)] = txt.substr(eq + 1);
  }
  return out;
}

/// One point of the cores × shards matrix.
struct CellSpec {
  unsigned cores = 1;    ///< replica processes pinned onto this many cores
  unsigned shards = 1;   ///< SO_REUSEPORT frontend shards per replica
  double rate = 6000;    ///< offered qps
  double min_qps = 0;    ///< regression floor (0 = delivery bar only)
  unsigned batch = net::Loadgen::kBatch;  ///< datagrams per syscall
  unsigned sockets = 0;  ///< driver source sockets (0 = match shards)
};

/// Parse "CxS:RATE[:MIN[:BATCH]]" (e.g. "1x4:40000:36000").
bool parse_cell(const std::string& text, CellSpec& out) {
  unsigned cores = 0, shards = 0, batch = net::Loadgen::kBatch;
  double rate = 0, min_qps = 0;
  const int n = std::sscanf(text.c_str(), "%ux%u:%lf:%lf:%u", &cores, &shards,
                            &rate, &min_qps, &batch);
  if (n < 3 || cores == 0 || shards == 0 || rate <= 0) return false;
  out.cores = cores;
  out.shards = shards;
  out.rate = rate;
  out.min_qps = min_qps;
  out.batch = batch;
  return true;
}

struct CellResult {
  bool skipped = false;  ///< machine too small for the requested cores
  bool ok = false;
  std::string json;  ///< one JSON object (indented two spaces deep)
};

std::uint64_t to_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

CellResult run_cell(const CellSpec& spec, const std::string& dir,
                    double duration, unsigned cell_index,
                    bool fail_on_send_errors) {
  CellResult result;
  const unsigned available = std::max(1u, std::thread::hardware_concurrency());
  char head[512];
  if (spec.cores > available) {
    std::fprintf(stderr, "cell %ux%u: skipped (%u cores available)\n",
                 spec.cores, spec.shards, available);
    std::snprintf(head, sizeof head,
                  "{\n"
                  "  \"cores\": %u,\n"
                  "  \"shards\": %u,\n"
                  "  \"offered_qps\": %.0f,\n"
                  "  \"skipped\": \"machine has %u cores\"\n"
                  "}",
                  spec.cores, spec.shards, spec.rate, available);
    result.skipped = true;
    result.ok = true;  // a skip is not a regression
    result.json = head;
    return result;
  }
  const unsigned sockets = spec.sockets ? spec.sockets : spec.shards;

  const std::string cell_dir = dir + "/cell" + std::to_string(cell_index);
  const std::string mkdir_cmd =
      "rm -rf '" + cell_dir + "' && mkdir -p '" + cell_dir + "'";
  if (std::system(mkdir_cmd.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", cell_dir.c_str());
    return result;
  }

  net::ClusterOptions copt;
  copt.n = 4;
  copt.t = 1;
  // Each cell forks its own cluster; spaced ports keep a dying cell's
  // sockets from colliding with the next one's bind.
  copt.dns_base_port = 6300 + 100 * static_cast<int>(cell_index);
  copt.mesh_base_port = 6350 + 100 * static_cast<int>(cell_index);
  copt.seed = 11;
  copt.shards = spec.shards;
  std::fprintf(stderr, "cell %ux%u: dealing cluster keys...\n", spec.cores,
               spec.shards);
  const net::ClusterFiles files = net::generate_cluster(cell_dir, copt);

  std::vector<pid_t> children;
  for (const std::string& config : files.configs) {
    const pid_t pid = ::fork();
    if (pid == 0) std::_Exit(run_replica(config));
    // Pin replica i onto core i mod C: the cell's cores are saturated
    // round-robin, and C < nproc leaves the remaining cores to the driver.
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(children.size() % spec.cores, &set);
    if (sched_setaffinity(pid, sizeof set, &set) != 0) {
      std::fprintf(stderr, "warning: sched_setaffinity(%d) failed: %s\n", pid,
                   std::strerror(errno));
    }
    children.push_back(pid);
  }

  // Wait for the cluster to come up (all four answer a probe query).
  {
    net::StubResolver::Options ropt;
    ropt.timeout = 0.5;
    ropt.attempts = 40;
    for (const net::SockAddr& addr : files.dns_addrs) {
      ropt.servers = {addr};
      net::StubResolver probe(ropt);
      const auto r = probe.query(dns::Name::parse("www.example.com."),
                                 dns::RRType::kA);
      if (!r.ok) {
        std::fprintf(stderr, "replica at %s never came up\n",
                     addr.to_string().c_str());
        for (pid_t pid : children) ::kill(pid, SIGTERM);
        for (pid_t pid : children) ::waitpid(pid, nullptr, 0);
        return result;
      }
    }
  }

  std::fprintf(stderr,
               "cell %ux%u up; driving %.0f qps for %.1f s (batch %u)...\n",
               spec.cores, spec.shards, spec.rate, duration, spec.batch);
  net::Loadgen::Report r;
  {
    net::EventLoop loop;
    net::Loadgen::Options lopt;
    lopt.servers = files.dns_addrs;
    lopt.name = dns::Name::parse("www.example.com.");
    lopt.rate = spec.rate;
    lopt.duration = duration;
    lopt.sockets = sockets;
    lopt.batch = spec.batch;
    net::Loadgen loadgen(loop, lopt);
    loadgen.start();
    loop.run();
    r = loadgen.report();
  }

  // Scrape each replica's counters while it is still alive: server-side
  // query totals, syscall-batching accounting, the server-observed latency
  // histogram, and — the run's fault-free invariant — zero abcast fallbacks.
  std::vector<std::map<std::string, std::string>> counters;
  for (const net::SockAddr& addr : files.dns_addrs) {
    counters.push_back(scrape_counters(addr));
  }

  for (pid_t pid : children) ::kill(pid, SIGTERM);
  for (pid_t pid : children) ::waitpid(pid, nullptr, 0);

  bool fallback_free = true;
  bool bypass_clean = true;
  std::uint64_t cache_hits = 0, cache_misses = 0;
  std::uint64_t server_queries = 0, server_recvmmsg = 0, server_sendmmsg = 0;
  std::uint64_t server_send_errors = 0;
  std::ostringstream replicas_json;
  for (std::size_t i = 0; i < counters.size(); ++i) {
    const auto& c = counters[i];
    auto get = [&c](const char* key) -> std::string {
      auto it = c.find(key);
      return it == c.end() ? "0" : it->second;
    };
    if (c.empty() || get("abcast.fallback") != "0") fallback_free = false;
    // A pure-read, unsigned workload must never take the TSIG or opcode
    // bypass — either one firing means signed/update traffic slipped into
    // the cacheable path or vice versa.
    if (get("net.cache.bypass.tsig") != "0" ||
        get("net.cache.bypass.opcode") != "0") {
      bypass_clean = false;
    }
    cache_hits += to_u64(get("net.cache.hits"));
    cache_misses += to_u64(get("net.cache.misses"));
    server_queries += to_u64(get("net.udp.queries"));
    server_recvmmsg += to_u64(get("net.udp.recvmmsg_calls"));
    server_sendmmsg += to_u64(get("net.udp.sendmmsg_calls"));
    server_send_errors += to_u64(get("net.udp.send_errors"));
    replicas_json << "    {\n"
                  << "      \"replica\": " << i << ",\n"
                  << "      \"scraped\": " << (c.empty() ? "false" : "true")
                  << ",\n"
                  << "      \"udp_queries\": " << get("net.udp.queries") << ",\n"
                  << "      \"replica_reads\": " << get("replica.reads") << ",\n"
                  << "      \"abcast_fallback\": " << get("abcast.fallback")
                  << ",\n"
                  << "      \"cache_hits\": " << get("net.cache.hits") << ",\n"
                  << "      \"cache_misses\": " << get("net.cache.misses")
                  << ",\n"
                  << "      \"cache_bypass_tsig\": "
                  << get("net.cache.bypass.tsig") << ",\n"
                  << "      \"cache_bypass_opcode\": "
                  << get("net.cache.bypass.opcode") << ",\n"
                  << "      \"udp_send_errors\": " << get("net.udp.send_errors")
                  << ",\n"
                  << "      \"recvmmsg_calls\": "
                  << get("net.udp.recvmmsg_calls") << ",\n"
                  << "      \"sendmmsg_calls\": "
                  << get("net.udp.sendmmsg_calls") << ",\n"
                  << "      \"query_latency_us\": {\n"
                  << "        \"count\": " << get("net.query.latency_us.count")
                  << ",\n"
                  << "        \"p50\": " << get("net.query.latency_us.p50")
                  << ",\n"
                  << "        \"p99\": " << get("net.query.latency_us.p99")
                  << ",\n"
                  << "        \"max\": " << get("net.query.latency_us.max")
                  << "\n"
                  << "      }\n"
                  << "    }" << (i + 1 < counters.size() ? "," : "") << "\n";
  }
  const double cache_hit_rate =
      (cache_hits + cache_misses) > 0
          ? static_cast<double>(cache_hits) /
                static_cast<double>(cache_hits + cache_misses)
          : 0.0;
  // Datagrams moved per syscall, both sides — THE number kernel batching
  // exists to raise (1.0 means one syscall per packet, the unbatched floor).
  const double server_queries_per_recvmmsg =
      server_recvmmsg ? static_cast<double>(server_queries) /
                            static_cast<double>(server_recvmmsg)
                      : 0.0;
  const double driver_sent_per_sendmmsg =
      r.sendmmsg_calls
          ? static_cast<double>(r.sent) / static_cast<double>(r.sendmmsg_calls)
          : 0.0;

  char json[2560];
  std::snprintf(json, sizeof json,
                "{\n"
                "  \"benchmark\": \"net_loadgen_loopback\",\n"
                "  \"topology\": \"(4,1) localhost, direct reads\",\n"
                "  \"cores\": %u,\n"
                "  \"shards\": %u,\n"
                "  \"driver_sockets\": %u,\n"
                "  \"batch\": %u,\n"
                "  \"offered_qps\": %.0f,\n"
                "  \"min_qps\": %.0f,\n"
                "  \"duration_s\": %.1f,\n"
                "  \"sent\": %llu,\n"
                "  \"received\": %llu,\n"
                "  \"duplicate_responses\": %llu,\n"
                "  \"timed_out\": %llu,\n"
                "  \"achieved_qps\": %.0f,\n"
                "  \"cache_hit_rate\": %.4f,\n"
                "  \"driver_send_errors\": %llu,\n"
                "  \"driver_sendmmsg_calls\": %llu,\n"
                "  \"driver_recvmmsg_calls\": %llu,\n"
                "  \"driver_sent_per_sendmmsg\": %.2f,\n"
                "  \"server_send_errors\": %llu,\n"
                "  \"server_queries_per_recvmmsg\": %.2f,\n"
                "  \"latency_ms\": {\n"
                "    \"mean\": %.3f,\n"
                "    \"p50\": %.3f,\n"
                "    \"p90\": %.3f,\n"
                "    \"p99\": %.3f,\n"
                "    \"p999\": %.3f,\n"
                "    \"max\": %.3f\n"
                "  },\n"
                "  \"replica_counters\": [\n",
                spec.cores, spec.shards, sockets, spec.batch, spec.rate,
                spec.min_qps, duration,
                static_cast<unsigned long long>(r.sent),
                static_cast<unsigned long long>(r.received),
                static_cast<unsigned long long>(r.duplicate_responses),
                static_cast<unsigned long long>(r.timed_out), r.achieved_qps,
                cache_hit_rate,
                static_cast<unsigned long long>(r.send_errors),
                static_cast<unsigned long long>(r.sendmmsg_calls),
                static_cast<unsigned long long>(r.recvmmsg_calls),
                driver_sent_per_sendmmsg,
                static_cast<unsigned long long>(server_send_errors),
                server_queries_per_recvmmsg, r.mean * 1e3, r.p50 * 1e3,
                r.p90 * 1e3, r.p99 * 1e3, r.p999 * 1e3, r.max * 1e3);
  result.json = json;
  result.json += replicas_json.str();
  result.json += "  ]\n}";

  // ≥95% answered at the offered rate counts as sustaining it, a fault-free
  // run must never leave the optimistic abcast path, a pure-read run must
  // never trip the TSIG/opcode cache bypass, and --min-qps (when given) is
  // the regression floor.
  const bool delivered = r.received >= static_cast<std::uint64_t>(0.95 * r.sent);
  // 2% tolerance: achieved = received / elapsed quantizes a hair below the
  // offered rate even at 100% delivery, so an exact floor would always fail.
  const bool fast_enough =
      spec.min_qps <= 0 || r.achieved_qps >= 0.98 * spec.min_qps;
  const bool sends_clean =
      !fail_on_send_errors || (r.send_errors == 0 && server_send_errors == 0);
  result.ok =
      delivered && fallback_free && bypass_clean && fast_enough && sends_clean;
  std::fprintf(stderr,
               "%s cell %ux%u: %llu/%llu answered, %.0f qps (floor %.0f), "
               "cache hit rate %.3f, %.1f q/recvmmsg, %llu send errors, "
               "%s, %s\n",
               result.ok ? "PASS" : "FAIL", spec.cores, spec.shards,
               static_cast<unsigned long long>(r.received),
               static_cast<unsigned long long>(r.sent), r.achieved_qps,
               spec.min_qps, cache_hit_rate, server_queries_per_recvmmsg,
               static_cast<unsigned long long>(r.send_errors +
                                               server_send_errors),
               fallback_free ? "fallback-free" : "FALLBACK OBSERVED",
               bypass_clean ? "bypass-clean" : "CACHE BYPASS TRIPPED");
  return result;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The replication-edge scenario: a (4,1) core under sustained RFC 2136
/// update load while `edges` forked sdns_edge processes serve the read
/// traffic at full packet-cache speed. Passes when the offered read rate is
/// delivered AND every edge is fresh (serves the last committed update)
/// within the propagation window after the load stops AND no edge ever
/// installed (or was even offered) an unverifiable zone.
bool run_edge_scenario(unsigned edges, double rate, double duration,
                       const std::string& dir, std::string* json_out) {
  net::ClusterOptions copt;
  copt.n = 4;
  copt.t = 1;
  copt.require_tsig = true;
  copt.seed = 11;
  copt.edges = edges;
  copt.dns_base_port = 6300;
  copt.mesh_base_port = 6350;
  copt.edge_base_port = 6400;
  std::fprintf(stderr, "edges scenario: dealing cluster keys...\n");
  const net::ClusterFiles files = net::generate_cluster(dir, copt);
  const dns::TsigKey tsig_key{files.tsig_name,
                              util::hex_decode(files.tsig_secret_hex)};

  std::vector<pid_t> children;
  for (const std::string& config : files.configs) {
    const pid_t pid = ::fork();
    if (pid == 0) std::_Exit(run_replica(config));
    children.push_back(pid);
  }
  const auto shutdown = [&children] {
    for (pid_t pid : children) ::kill(pid, SIGTERM);
    for (pid_t pid : children) ::waitpid(pid, nullptr, 0);
  };

  // Wait for the core, then fork the edges and wait for their bootstrap
  // (an edge answers ServFail until its AXFR copy verified and installed).
  {
    net::StubResolver::Options ropt;
    ropt.timeout = 0.5;
    ropt.attempts = 40;
    for (const net::SockAddr& addr : files.dns_addrs) {
      ropt.servers = {addr};
      net::StubResolver probe(ropt);
      if (!probe.query(dns::Name::parse("www.example.com."), dns::RRType::kA).ok) {
        std::fprintf(stderr, "replica at %s never came up\n",
                     addr.to_string().c_str());
        shutdown();
        return false;
      }
    }
  }
  for (const std::string& config : files.edge_configs) {
    const pid_t pid = ::fork();
    if (pid == 0) std::_Exit(run_edge(config));
    children.push_back(pid);
  }
  for (const net::SockAddr& addr : files.edge_addrs) {
    const double deadline = now_s() + 30.0;
    bool up = false;
    while (now_s() < deadline) {
      net::StubResolver::Options ropt;
      ropt.servers = {addr};
      ropt.timeout = 0.5;
      ropt.attempts = 1;
      net::StubResolver probe(ropt);
      const auto r =
          probe.query(dns::Name::parse("www.example.com."), dns::RRType::kA);
      if (r.ok && r.response.rcode == dns::Rcode::kNoError &&
          !r.response.answers.empty()) {
        up = true;
        break;
      }
      ::usleep(100 * 1000);
    }
    if (!up) {
      std::fprintf(stderr, "edge at %s never bootstrapped\n",
                   addr.to_string().c_str());
      shutdown();
      return false;
    }
  }

  // Sustained update load: one TSIG-signed RFC 2136 add every 250 ms,
  // round-robin across the core, each a fresh owner name so the no-stale
  // probe below has an unambiguous "last committed write" to look for.
  std::atomic<bool> stop_updates{false};
  std::atomic<unsigned> committed{0};
  std::thread updater([&] {
    unsigned i = 0;
    while (!stop_updates.load(std::memory_order_relaxed)) {
      dns::Message update;
      update.opcode = dns::Opcode::kUpdate;
      update.questions.push_back({dns::Name::parse("example.com."),
                                  dns::RRType::kSOA, dns::RRClass::kIN});
      dns::ResourceRecord rr;
      rr.name = dns::Name::parse("u" + std::to_string(i) + ".example.com.");
      rr.type = dns::RRType::kA;
      rr.ttl = 300;
      rr.rdata = dns::ARdata::from_text("10.9." + std::to_string(i / 250) + "." +
                                        std::to_string(i % 250 + 1))
                     .encode();
      update.updates().push_back(rr);
      net::StubResolver::Options ropt;
      ropt.servers = {files.dns_addrs[i % files.dns_addrs.size()]};
      ropt.timeout = 2.0;
      ropt.attempts = 2;
      net::StubResolver r(ropt);
      const auto res = r.send_update(std::move(update), &tsig_key);
      if (res.ok && res.response.rcode == dns::Rcode::kNoError) {
        committed.store(++i, std::memory_order_relaxed);
      }
      ::usleep(250 * 1000);
    }
  });

  std::fprintf(stderr,
               "core + %u edge(s) up; driving %.0f qps at the edges for "
               "%.1f s under update load...\n",
               edges, rate, duration);
  net::Loadgen::Report r;
  {
    net::EventLoop loop;
    net::Loadgen::Options lopt;
    lopt.servers = files.edge_addrs;
    lopt.name = dns::Name::parse("www.example.com.");
    lopt.rate = rate;
    lopt.duration = duration;
    net::Loadgen loadgen(loop, lopt);
    loadgen.start();
    loop.run();
    r = loadgen.report();
  }
  stop_updates.store(true, std::memory_order_relaxed);
  updater.join();

  // No-stale probe: after the propagation window (NOTIFY -> ack -> IXFR ->
  // verify -> swap, with the 2 s SOA poll as the lost-datagram backstop),
  // every edge must serve the last committed write.
  const unsigned updates = committed.load(std::memory_order_relaxed);
  double worst_propagation = 0;
  bool all_fresh = updates > 0;
  if (updates > 0) {
    const std::string last = "u" + std::to_string(updates - 1) + ".example.com.";
    for (const net::SockAddr& addr : files.edge_addrs) {
      const double start = now_s();
      const double deadline = start + 10.0;
      bool fresh = false;
      while (now_s() < deadline) {
        net::StubResolver::Options ropt;
        ropt.servers = {addr};
        ropt.timeout = 0.5;
        ropt.attempts = 1;
        net::StubResolver probe(ropt);
        const auto res = probe.query(dns::Name::parse(last), dns::RRType::kA);
        if (res.ok && res.response.rcode == dns::Rcode::kNoError &&
            !res.response.answers.empty()) {
          fresh = true;
          break;
        }
        ::usleep(100 * 1000);
      }
      worst_propagation = std::max(worst_propagation, now_s() - start);
      if (!fresh) {
        std::fprintf(stderr, "edge at %s is STALE: never served %s\n",
                     addr.to_string().c_str(), last.c_str());
        all_fresh = false;
      }
    }
  }

  // Scrape the edges while they are alive: the refresh path must have been
  // NOTIFY-driven IXFR, the verify gate must never have fired, and the read
  // load must have been served out of the packet cache.
  bool verify_clean = true;
  std::uint64_t edge_cache_hits = 0, edge_ixfr = 0;
  std::ostringstream edges_json;
  for (std::size_t k = 0; k < files.edge_addrs.size(); ++k) {
    const auto c = scrape_counters(files.edge_addrs[k]);
    auto get = [&c](const char* key) -> std::string {
      auto it = c.find(key);
      return it == c.end() ? "0" : it->second;
    };
    if (c.empty() || get("edge.verify_failures") != "0") verify_clean = false;
    edge_cache_hits += to_u64(get("net.cache.hits"));
    edge_ixfr += to_u64(get("edge.ixfr_applied"));
    edges_json << "    {\n"
               << "      \"edge\": " << k << ",\n"
               << "      \"scraped\": " << (c.empty() ? "false" : "true") << ",\n"
               << "      \"udp_queries\": " << get("net.udp.queries") << ",\n"
               << "      \"cache_hits\": " << get("net.cache.hits") << ",\n"
               << "      \"axfr_bootstraps\": " << get("edge.axfr_bootstraps")
               << ",\n"
               << "      \"notifies_received\": "
               << get("edge.notifies_received") << ",\n"
               << "      \"ixfr_applied\": " << get("edge.ixfr_applied") << ",\n"
               << "      \"refresh_up_to_date\": "
               << get("edge.refresh_up_to_date") << ",\n"
               << "      \"verify_failures\": " << get("edge.verify_failures")
               << ",\n"
               << "      \"zone_serial\": " << get("edge.zone_serial") << "\n"
               << "    }" << (k + 1 < files.edge_addrs.size() ? "," : "") << "\n";
  }

  shutdown();

  const bool delivered = r.received >= static_cast<std::uint64_t>(0.95 * r.sent);
  const bool refreshed = edge_ixfr >= 1 && edge_cache_hits > 0;
  const bool ok =
      delivered && all_fresh && verify_clean && refreshed && updates > 0;

  char head[1280];
  std::snprintf(head, sizeof head,
                "{\n"
                "  \"benchmark\": \"net_loadgen_edges\",\n"
                "  \"topology\": \"(4,1) core + %u edges, localhost\",\n"
                "  \"edges\": %u,\n"
                "  \"offered_qps\": %.0f,\n"
                "  \"duration_s\": %.1f,\n"
                "  \"sent\": %llu,\n"
                "  \"received\": %llu,\n"
                "  \"timed_out\": %llu,\n"
                "  \"achieved_qps\": %.0f,\n"
                "  \"updates_committed\": %u,\n"
                "  \"all_edges_fresh\": %s,\n"
                "  \"worst_propagation_s\": %.2f,\n"
                "  \"latency_ms\": {\n"
                "    \"mean\": %.3f,\n"
                "    \"p50\": %.3f,\n"
                "    \"p99\": %.3f,\n"
                "    \"max\": %.3f\n"
                "  },\n"
                "  \"edge_counters\": [\n",
                edges, edges, rate, duration,
                static_cast<unsigned long long>(r.sent),
                static_cast<unsigned long long>(r.received),
                static_cast<unsigned long long>(r.timed_out), r.achieved_qps,
                updates, all_fresh ? "true" : "false", worst_propagation,
                r.mean * 1e3, r.p50 * 1e3, r.p99 * 1e3, r.max * 1e3);
  *json_out = head;
  *json_out += edges_json.str();
  *json_out += "  ]\n}\n";

  std::fprintf(stderr,
               "%s edges=%u: %llu/%llu answered at %.0f qps, %u updates, "
               "%s (worst propagation %.2f s), %llu edge cache hits, "
               "%llu IXFRs applied, %s\n",
               ok ? "PASS" : "FAIL", edges,
               static_cast<unsigned long long>(r.received),
               static_cast<unsigned long long>(r.sent), r.achieved_qps, updates,
               all_fresh ? "all edges fresh" : "STALE EDGE", worst_propagation,
               static_cast<unsigned long long>(edge_cache_hits),
               static_cast<unsigned long long>(edge_ixfr),
               verify_clean ? "verify-clean" : "VERIFY FAILURES");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  CellSpec single;
  double duration = 5.0;
  bool fail_on_send_errors = false;
  unsigned edges = 0;
  std::string dir = "/tmp/sdns_loadgen_cluster";
  std::string json_path;
  std::vector<CellSpec> matrix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      single.rate = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--edges") == 0 && i + 1 < argc) {
      edges = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-qps") == 0 && i + 1 < argc) {
      single.min_qps = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      single.shards = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--sockets") == 0 && i + 1 < argc) {
      single.sockets = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      single.batch = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--matrix") == 0 && i + 1 < argc) {
      CellSpec cell;
      if (!parse_cell(argv[++i], cell)) {
        std::fprintf(stderr, "bad matrix cell '%s'\n", argv[i]);
        return 2;
      }
      matrix.push_back(cell);
    } else if (std::strcmp(argv[i], "--fail-on-send-errors") == 0) {
      fail_on_send_errors = true;
    } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--rate QPS] [--duration S] [--dir DIR] [--json FILE]\n"
          "          [--shards N] [--sockets N] [--batch N] [--min-qps QPS]\n"
          "          [--edges N] [--matrix CxS:RATE[:MIN[:BATCH]]]... "
          "[--fail-on-send-errors]\n",
          argv[0]);
      return 2;
    }
  }
  if (single.shards < 1) single.shards = 1;

  const std::string mkdir_cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  if (std::system(mkdir_cmd.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  std::string full;
  bool all_ok = true;
  if (edges > 0) {
    // The replication-edge scenario: core under update load, reads at the
    // edges, no-stale probe after the propagation window.
    all_ok = run_edge_scenario(edges, single.rate, duration, dir, &full);
  } else if (matrix.empty()) {
    // Legacy single-run shape: one cell, the object printed bare.
    const CellResult cell =
        run_cell(single, dir, duration, 0, fail_on_send_errors);
    all_ok = cell.ok && !cell.skipped;
    full = cell.json + "\n";
  } else {
    const unsigned available =
        std::max(1u, std::thread::hardware_concurrency());
    std::ostringstream out;
    out << "{\n"
        << "  \"benchmark\": \"net_loadgen_matrix\",\n"
        << "  \"available_cores\": " << available << ",\n"
        << "  \"duration_s\": " << duration << ",\n"
        << "  \"cells\": [\n";
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      const CellResult cell = run_cell(matrix[i], dir, duration,
                                       static_cast<unsigned>(i),
                                       fail_on_send_errors);
      all_ok = all_ok && cell.ok;
      // Re-indent the cell object two levels under "cells".
      std::istringstream lines(cell.json);
      std::string line;
      bool first = true;
      while (std::getline(lines, line)) {
        out << (first ? "    " : "\n    ") << line;
        first = false;
      }
      out << (i + 1 < matrix.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    full = out.str();
  }
  std::fputs(full.c_str(), stdout);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << full;
  }
  return all_ok ? 0 : 1;
}
